"""Trace encoding, crash-consistent persistence, and the guest-heap buffers.

A trace has **two independent word streams**, mirroring the paper's
footnote 7 ("logging data for non-reproducible events such as reading the
wall clock need be done independently of thread switch information"):

* the **switch stream** — bare ``nyp`` yield-point deltas, one per
  preemptive thread switch (Figure 2);
* the **value stream** — tagged records for wall-clock reads, native-call
  results and callback parameters (see :mod:`repro.core.events`).

Streams are encoded to bytes with zig-zag varints.  In-flight words pass
through **guest heap ``[I`` buffers** — the same array objects, allocated
at the same points, in both record mode (instrumentation *writes*, flushes
to the host when full) and replay mode (instrumentation *reads*, refills
from the host when empty).  That is the paper's "symmetry in allocation":
the buffers are DejaVu's biggest heap side effect, and making them
identical in both modes keeps the allocation stream — hence GC timing,
object addresses, and identity hashes — reproducible.

Persistence: **format v3** (see DESIGN.md).  The file is a header followed
by length-framed, CRC32-checksummed segments and a sealed footer::

    "DJVU" u16=3 | segment* | footer-segment
    segment := kind(1B) payload_len(u32le) crc32(u32le) payload

Record mode streams segments to ``trace.djv.tmp`` and atomically renames
on a clean end, so an interrupted record leaves either nothing or a
salvageable prefix (:meth:`TraceLog.salvage`).  Segment framing is pure
host-side I/O: the guest-heap buffers, their capacities and their flush
points are identical in both modes and unaware of it, preserving the
allocation symmetry.  v2 traces (the pre-segment format) still load,
read-only.
"""

from __future__ import annotations

import io
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.vm.errors import TraceFormatError, VMError

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine

MAGIC = b"DJVU"
FORMAT_VERSION = 3
#: versions this build can read (v2 = legacy single-blob streams)
READABLE_VERSIONS = (2, 3)

#: segment kinds
SEG_META = b"M"
SEG_SWITCH = b"S"
SEG_VALUE = b"V"
SEG_FOOTER = b"F"
_SEGMENT_KINDS = (SEG_META, SEG_SWITCH, SEG_VALUE, SEG_FOOTER)
_SEG_HEADER_BYTES = 1 + 4 + 4  # kind + payload_len + crc32
#: sanity bound so a corrupted length field cannot demand a giant read
MAX_SEGMENT_BYTES = 1 << 26
#: record-mode words per on-disk segment (host-side knob; guest-invisible)
SEGMENT_WORDS = 4096

_STREAM_OF_KIND = {SEG_SWITCH: "switch", SEG_VALUE: "value",
                   SEG_META: "meta", SEG_FOOTER: "footer"}


def config_fingerprint(config) -> str:
    """The behaviour-affecting VM sizing as a short comparable string.

    Heap and stack sizing change GC timing and stack-growth events, so a
    replay under a different fingerprint can diverge for reasons that have
    nothing to do with the trace.  Engine toggles are deliberately
    excluded: the EngineConfig contract makes them guest-invisible.
    """
    return (
        f"heap={config.semispace_words}"
        f";stack={config.initial_stack_words}/{config.max_stack_words}"
        f";maxcycles={config.max_cycles}"
    )


# ---------------------------------------------------------------------------
# varint primitives


def zigzag(n: int) -> int:
    # Bit-identical to the classic `(n << 1) ^ (n >> 63)` for every value
    # that fits a 64-bit word, but correct for arbitrary-precision ints
    # too: the shift form assumes `n >> 63 == -1` for negatives, which
    # fails below -(2**63) and yields a negative "unsigned" code that
    # write_varint can never terminate on.
    return -2 * n - 1 if n < 0 else 2 * n


def unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def write_varint(out: bytearray, n: int) -> None:
    z = zigzag(n)
    while True:
        b = z & 0x7F
        z >>= 7
        if z:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def read_varint(data: bytes, pos: int, stream: str = "trace") -> tuple[int, int]:
    z = 0
    shift = 0
    start = pos
    while True:
        if pos >= len(data):
            raise TraceFormatError(
                "truncated varint (continuation bit set at end of data)",
                stream=stream,
                offset=start,
            )
        b = data[pos]
        pos += 1
        z |= (b & 0x7F) << shift
        if not (b & 0x80):
            return unzigzag(z), pos
        shift += 7


def encode_words(words: list[int]) -> bytes:
    out = bytearray()
    for w in words:
        write_varint(out, w)
    return bytes(out)


def decode_words(data: bytes, stream: str = "trace") -> list[int]:
    words = []
    pos = 0
    while pos < len(data):
        w, pos = read_varint(data, pos, stream)
        words.append(w)
    return words


# ---------------------------------------------------------------------------
# meta encoding (shared by v2 and v3: repr of sorted items, eval'd back)


def _encode_meta(meta: dict) -> bytes:
    return repr(sorted(meta.items())).encode()


def _decode_meta(blob: bytes, stream: str = "meta") -> dict:
    try:
        return dict(eval(blob.decode()))  # noqa: S307 - own format
    except Exception as exc:
        raise TraceFormatError(
            f"undecodable {stream} blob: {exc}", stream=stream, offset=0
        ) from exc


# ---------------------------------------------------------------------------
# the persisted trace


@dataclass
class SalvageReport:
    """What :meth:`TraceLog.salvage` found in a torn file."""

    intact_segments: int = 0
    switch_segments: int = 0
    value_segments: int = 0
    sealed: bool = False
    stopped_at: int | None = None  # byte offset of the first damage
    error: str | None = None  # why scanning stopped (None = clean EOF)

    def describe(self) -> str:
        if self.sealed:
            return "file is sealed and intact (no salvage needed)"
        where = f" at byte {self.stopped_at}" if self.stopped_at is not None else ""
        why = f": {self.error}" if self.error else " (file ends mid-record)"
        return (
            f"salvaged {self.intact_segments} intact segments "
            f"({self.switch_segments} switch, {self.value_segments} value), "
            f"stopped{where}{why}"
        )


@dataclass
class TraceLog:
    """A complete recorded execution, ready to drive a replay."""

    switches: list[int] = field(default_factory=list)
    values: list[int] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    #: set by :meth:`salvage` — None for cleanly loaded traces
    salvage_report: "SalvageReport | None" = None

    @property
    def encoded_size_bytes(self) -> int:
        return len(encode_words(self.switches)) + len(encode_words(self.values))

    @property
    def n_switch_records(self) -> int:
        return len(self.switches)

    @property
    def n_value_words(self) -> int:
        return len(self.values)

    @property
    def truncated(self) -> bool:
        return bool(self.meta.get("truncated"))

    # -- writing -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist as format v3, atomically (tmp file + rename)."""
        writer = TraceWriter(path)
        try:
            for w in self.switches:
                writer.switch_sink.append(w)
            for w in self.values:
                writer.value_sink.append(w)
            writer.seal(self.meta)
        except BaseException:
            writer.abandon()
            raise

    def save_v2(self, path: str | Path) -> None:
        """Write the legacy v2 format (tests / downgrade escape hatch)."""
        path = Path(path)
        with path.open("wb") as f:
            f.write(MAGIC)
            f.write((2).to_bytes(2, "little"))
            meta_blob = _encode_meta(self.meta)
            f.write(len(meta_blob).to_bytes(4, "little"))
            f.write(meta_blob)
            for payload in (encode_words(self.switches), encode_words(self.values)):
                f.write(len(payload).to_bytes(8, "little"))
                f.write(payload)

    # -- reading -----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "TraceLog":
        """Load a sealed trace; any damage raises :class:`TraceFormatError`."""
        log, report = cls._read(path, salvage=False)
        return log

    @classmethod
    def salvage(cls, path: str | Path) -> "TraceLog":
        """Recover every intact segment from a (possibly torn) trace file.

        Returns a :class:`TraceLog` whose streams hold the surviving
        prefix.  If the file turns out to be sealed and intact, the result
        equals :meth:`load`; otherwise ``meta["truncated"]`` is set and
        ``salvage_report`` says where scanning stopped.  Files that are
        not DejaVu traces at all (bad magic, unreadable version) are not
        salvageable and still raise :class:`TraceFormatError`.
        """
        log, report = cls._read(path, salvage=True)
        log.salvage_report = report
        if not report.sealed:
            log.meta["truncated"] = True
        return log

    @classmethod
    def _read(cls, path: str | Path, *, salvage: bool) -> "tuple[TraceLog, SalvageReport]":
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise TraceFormatError(f"cannot read trace: {exc}", stream="header") from exc
        if len(data) == 0:
            raise TraceFormatError("empty file (not a DejaVu trace)",
                                   stream="header", offset=0)
        if data[:4] != MAGIC:
            raise TraceFormatError(
                f"not a DejaVu trace: {path.name} (bad magic {data[:4]!r})",
                stream="header", offset=0,
            )
        if len(data) < 6:
            raise TraceFormatError("header torn before version field",
                                   stream="header", offset=4)
        version = int.from_bytes(data[4:6], "little")
        if version not in READABLE_VERSIONS:
            raise TraceFormatError(
                f"unsupported trace version {version} "
                f"(this build reads {', '.join(map(str, READABLE_VERSIONS))})",
                stream="header", offset=4,
            )
        if version == 2:
            return cls._read_v2(data), SalvageReport(sealed=True)
        return cls._read_v3(data, salvage=salvage)

    @classmethod
    def _read_v2(cls, data: bytes) -> "TraceLog":
        buf = io.BytesIO(data)
        buf.read(6)
        meta_len = int.from_bytes(buf.read(4), "little")
        meta_blob = buf.read(meta_len)
        if len(meta_blob) != meta_len:
            raise TraceFormatError("truncated meta blob", stream="meta",
                                   offset=10)
        meta = _decode_meta(meta_blob)
        streams = []
        for name in ("switch", "value"):
            payload_len = int.from_bytes(buf.read(8), "little")
            payload = buf.read(payload_len)
            if len(payload) != payload_len:
                raise TraceFormatError(
                    f"truncated {name} payload ({len(payload)} of {payload_len} bytes)",
                    stream=name, offset=buf.tell() - len(payload),
                )
            streams.append(decode_words(payload, name))
        meta.setdefault("format_version", 2)
        return cls(switches=streams[0], values=streams[1], meta=meta)

    @classmethod
    def _read_v3(cls, data: bytes, *, salvage: bool) -> "tuple[TraceLog, SalvageReport]":
        switches: list[int] = []
        values: list[int] = []
        meta: dict = {}
        footer: dict | None = None
        report = SalvageReport()
        stream_crcs = {SEG_SWITCH: 0, SEG_VALUE: 0}
        error: TraceFormatError | None = None
        pos = 6
        seg_index = 0
        while pos < len(data):
            if footer is not None:
                error = TraceFormatError(
                    f"{len(data) - pos} bytes of trailing data after the footer",
                    stream="footer", offset=pos,
                )
                break
            if pos + _SEG_HEADER_BYTES > len(data):
                error = TraceFormatError(
                    f"torn segment header (segment {seg_index}: "
                    f"{len(data) - pos} of {_SEG_HEADER_BYTES} header bytes)",
                    stream="segment", offset=pos,
                )
                break
            kind = data[pos:pos + 1]
            payload_len = int.from_bytes(data[pos + 1:pos + 5], "little")
            want_crc = int.from_bytes(data[pos + 5:pos + 9], "little")
            if kind not in _SEGMENT_KINDS:
                error = TraceFormatError(
                    f"unknown segment kind {kind!r} (segment {seg_index})",
                    stream="segment", offset=pos,
                )
                break
            if payload_len > MAX_SEGMENT_BYTES:
                error = TraceFormatError(
                    f"implausible segment length {payload_len} "
                    f"(segment {seg_index}; cap is {MAX_SEGMENT_BYTES})",
                    stream=_STREAM_OF_KIND[kind], offset=pos,
                )
                break
            payload = data[pos + 9:pos + 9 + payload_len]
            if len(payload) != payload_len:
                error = TraceFormatError(
                    f"torn segment payload (segment {seg_index}, "
                    f"{_STREAM_OF_KIND[kind]}: {len(payload)} of {payload_len} bytes)",
                    stream=_STREAM_OF_KIND[kind], offset=pos + 9,
                )
                break
            if zlib.crc32(payload) != want_crc:
                error = TraceFormatError(
                    f"segment CRC mismatch (segment {seg_index}, "
                    f"{_STREAM_OF_KIND[kind]} stream)",
                    stream=_STREAM_OF_KIND[kind], offset=pos,
                )
                break
            if kind == SEG_SWITCH:
                switches.extend(decode_words(payload, "switch"))
                stream_crcs[SEG_SWITCH] = zlib.crc32(payload, stream_crcs[SEG_SWITCH])
                report.switch_segments += 1
            elif kind == SEG_VALUE:
                values.extend(decode_words(payload, "value"))
                stream_crcs[SEG_VALUE] = zlib.crc32(payload, stream_crcs[SEG_VALUE])
                report.value_segments += 1
            elif kind == SEG_META:
                meta.update(_decode_meta(payload))
            else:  # footer
                footer = _decode_meta(payload, "footer")
            report.intact_segments += 1
            seg_index += 1
            pos += _SEG_HEADER_BYTES + payload_len

        if error is not None:
            report.stopped_at = error.offset
            report.error = str(error)
            if not salvage:
                raise error
        if footer is None:
            if not salvage:
                raise TraceFormatError(
                    "trace has no footer: the file is unsealed "
                    "(recorder died mid-run?) — try salvage",
                    stream="footer", offset=len(data),
                )
        else:
            cls._check_footer(footer, switches, values, report, stream_crcs)
            report.sealed = error is None
        return cls(switches=switches, values=values, meta=meta), report

    @staticmethod
    def _check_footer(footer, switches, values, report, stream_crcs) -> None:
        checks = (
            ("n_switch_words", len(switches)),
            ("n_value_words", len(values)),
            ("n_switch_segments", report.switch_segments),
            ("n_value_segments", report.value_segments),
            ("switch_crc", stream_crcs[SEG_SWITCH]),
            ("value_crc", stream_crcs[SEG_VALUE]),
        )
        for key, got in checks:
            want = footer.get(key)
            if want != got:
                raise TraceFormatError(
                    f"footer mismatch on {key}: footer says {want!r}, "
                    f"file holds {got!r}",
                    stream="footer",
                )


# ---------------------------------------------------------------------------
# crash-consistent streaming writer


class _SpillList(list):
    """A word sink that spills full segments to the writer as it grows.

    It *is* the host-side word list (``DejaVu`` appends flushed guest
    buffers into it and ``trace()`` reads it back whole); the spill is a
    side channel to disk and never mutates the list, so attaching a writer
    changes nothing the controller — let alone the guest — can observe.
    """

    def __init__(self, writer: "TraceWriter", kind: bytes):
        super().__init__()
        self._writer = writer
        self._kind = kind
        self._spilled = 0  # words already written to disk

    def append(self, word: int) -> None:
        super().append(word)
        if len(self) - self._spilled >= self._writer.segment_words:
            self.spill()

    def spill(self) -> None:
        pending = self[self._spilled:]
        if not pending:
            return
        self._writer._write_stream_segment(self._kind, pending)
        self._spilled = len(self)


class TraceWriter:
    """Streams a recording to ``<path>.tmp`` and seals it atomically.

    Every full segment is framed, checksummed, and flushed to the OS as it
    completes, so a crash mid-record leaves a prefix of intact segments
    that :meth:`TraceLog.salvage` can recover.  :meth:`seal` writes the
    meta segment and footer, fsyncs, and ``os.replace``\\ s the tmp file
    onto the final path — the final name never holds a torn file.
    """

    def __init__(self, path: str | Path, *, segment_words: int = SEGMENT_WORDS):
        if segment_words <= 0:
            raise VMError(f"segment_words must be positive, got {segment_words}")
        self.path = Path(path)
        self.tmp_path = self.path.with_name(self.path.name + ".tmp")
        self.segment_words = segment_words
        self._f = self.tmp_path.open("wb")
        self._f.write(MAGIC)
        self._f.write(FORMAT_VERSION.to_bytes(2, "little"))
        self._f.flush()
        self.switch_sink = _SpillList(self, SEG_SWITCH)
        self.value_sink = _SpillList(self, SEG_VALUE)
        self._stream_crcs = {SEG_SWITCH: 0, SEG_VALUE: 0}
        self._seg_counts = {SEG_SWITCH: 0, SEG_VALUE: 0}
        self._sealed = False

    def _write_segment(self, kind: bytes, payload: bytes) -> None:
        self._f.write(kind)
        self._f.write(len(payload).to_bytes(4, "little"))
        self._f.write(zlib.crc32(payload).to_bytes(4, "little"))
        self._f.write(payload)
        self._f.flush()

    def _write_stream_segment(self, kind: bytes, words: list[int]) -> None:
        payload = encode_words(words)
        self._stream_crcs[kind] = zlib.crc32(payload, self._stream_crcs[kind])
        self._seg_counts[kind] += 1
        self._write_segment(kind, payload)

    def seal(self, meta: dict) -> None:
        """Flush remaining words, write meta + footer, rename into place."""
        if self._sealed:
            raise VMError("TraceWriter already sealed")
        self.switch_sink.spill()
        self.value_sink.spill()
        if meta:
            self._write_segment(SEG_META, _encode_meta(meta))
        footer = {
            "n_switch_words": len(self.switch_sink),
            "n_value_words": len(self.value_sink),
            "n_switch_segments": self._seg_counts[SEG_SWITCH],
            "n_value_segments": self._seg_counts[SEG_VALUE],
            "switch_crc": self._stream_crcs[SEG_SWITCH],
            "value_crc": self._stream_crcs[SEG_VALUE],
            "config": meta.get("config"),
        }
        self._write_segment(SEG_FOOTER, _encode_meta(footer))
        self._f.flush()
        os.fsync(self._f.fileno())
        self._f.close()
        os.replace(self.tmp_path, self.path)
        self._sealed = True

    def abandon(self) -> None:
        """Stop writing, leaving the tmp file as-is (the crash outcome)."""
        if not self._f.closed:
            self._f.close()

    @property
    def sealed(self) -> bool:
        return self._sealed


# ---------------------------------------------------------------------------
# the guest-heap buffers


class TraceBuffer:
    """Word FIFO staged through a guest heap int array.

    Record mode: ``put`` words; when the array fills, its contents drain to
    the host-side word list (a "flush", which fires the lazy-class-load and
    internal-yield-point side effects the symmetry rules govern).

    Replay mode: ``take`` words; when the array empties, the next chunk of
    the trace refills it (a "refill", the mirror-image side effect).
    """

    def __init__(self, vm: "VirtualMachine", capacity_words: int, *, boot_slot: int | None = None):
        self.vm = vm
        self.capacity = capacity_words
        self.boot_slot = boot_slot
        self.addr = 0
        self._fill = 0  # valid words in the guest array
        self._pos = 0  # read cursor (replay)
        self.flushes = 0
        self.refills = 0
        #: side-effect hook invoked on every flush/refill (symmetry module)
        self.on_drain: Callable[[str], None] | None = None

    def allocate(self) -> None:
        """Allocate the guest array (the 'symmetry in allocation' event)."""
        if self.addr:
            return
        self.addr = self.vm.om.new_array("[I", self.capacity)
        if self.boot_slot is not None:
            self.vm.memory.boot_write(self.boot_slot, self.addr)

    @property
    def allocated(self) -> bool:
        return self.addr != 0

    # -- record side -------------------------------------------------------

    def put(self, word: int, sink: list[int]) -> None:
        if not self.addr:
            self.allocate()
        if self._fill >= self.capacity:
            self.flush(sink)
        self.vm.om.array_put(self.addr, self._fill, word)
        self._fill += 1

    def flush(self, sink: list[int]) -> None:
        om = self.vm.om
        for i in range(self._fill):
            sink.append(om.array_get(self.addr, i))
        self._fill = 0
        self.flushes += 1
        if self.on_drain is not None:
            self.on_drain("flush")

    # -- replay side -------------------------------------------------------

    def take(self, source: list[int], cursor: int) -> tuple[int | None, int]:
        """Pop the next word; returns (word | None-when-exhausted, cursor)."""
        if not self.addr:
            self.allocate()
        if self._pos >= self._fill:
            cursor = self._refill(source, cursor)
            if self._fill == 0:
                return None, cursor
        word = self.vm.om.array_get(self.addr, self._pos)
        self._pos += 1
        return word, cursor

    def _refill(self, source: list[int], cursor: int) -> int:
        om = self.vm.om
        n = min(self.capacity, len(source) - cursor)
        for i in range(n):
            om.array_put(self.addr, i, source[cursor + i])
        self._fill = n
        self._pos = 0
        self.refills += 1
        if self.on_drain is not None:
            self.on_drain("refill")
        return cursor + n

    # -- shared -------------------------------------------------------------

    def zero(self) -> None:
        """Erase buffer contents (end of run) so record and replay leave
        byte-identical heaps behind — the END heap-digest check depends
        on this."""
        if not self.addr:
            return
        om = self.vm.om
        for i in range(self.capacity):
            om.array_put(self.addr, i, 0)
        self._fill = 0
        self._pos = 0

    def visit_roots(self, fwd: Callable[[int], int]) -> None:
        if self.addr:
            self.addr = fwd(self.addr)
