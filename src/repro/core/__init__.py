"""DejaVu: the deterministic record/replay platform (the paper's core).

Public surface:

* :class:`repro.core.controller.DejaVu` — the record/replay controller
  attached to a :class:`repro.vm.VirtualMachine`;
* :class:`repro.core.controller.SymmetryConfig` — the symmetric-
  instrumentation knobs (each individually ablatable, §2.4);
* :class:`repro.core.tracelog.TraceLog` — a recorded execution;
* :mod:`repro.core.verify` — replay accuracy checking.

The convenience API (record a program / replay a trace in one call) lives
in :mod:`repro.api`.
"""

from repro.core.controller import MODE_RECORD, MODE_REPLAY, DejaVu, SymmetryConfig
from repro.core.doctor import DoctorReport, diagnose
from repro.core.tracelog import TraceLog, TraceWriter, config_fingerprint
from repro.core.verify import ReplayReport, assert_faithful_replay, compare_runs

__all__ = [
    "DejaVu",
    "DoctorReport",
    "MODE_RECORD",
    "MODE_REPLAY",
    "ReplayReport",
    "SymmetryConfig",
    "TraceLog",
    "TraceWriter",
    "assert_faithful_replay",
    "compare_runs",
    "config_fingerprint",
    "diagnose",
]
