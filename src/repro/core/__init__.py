"""DejaVu: the deterministic record/replay platform (the paper's core).

Public surface:

* :class:`repro.core.controller.DejaVu` — the record/replay controller
  attached to a :class:`repro.vm.VirtualMachine`;
* :class:`repro.core.controller.SymmetryConfig` — the symmetric-
  instrumentation knobs (each individually ablatable, §2.4);
* :class:`repro.core.tracelog.TraceLog` — a recorded execution;
* :mod:`repro.core.checkpoint` — digest-verified machine snapshots for
  crash-resumable replay and O(interval) time-travel seeks;
* :mod:`repro.core.verify` — replay accuracy checking.

The convenience API (record a program / replay a trace in one call) lives
in :mod:`repro.api`.
"""

from repro.core.checkpoint import (
    CheckpointRecorder,
    CheckpointStore,
    CheckpointWriter,
    Snapshot,
    capture_snapshot,
    machine_digest,
    restore_vm,
    sidecar_path,
)
from repro.core.controller import MODE_RECORD, MODE_REPLAY, DejaVu, SymmetryConfig
from repro.core.doctor import DoctorReport, diagnose
from repro.core.framing import BackoffPolicy, FrameDecoder, FrameError, TransportError
from repro.core.tracelog import TraceLog, TraceWriter, config_fingerprint
from repro.core.verify import ReplayReport, assert_faithful_replay, compare_runs

__all__ = [
    "BackoffPolicy",
    "CheckpointRecorder",
    "CheckpointStore",
    "CheckpointWriter",
    "DejaVu",
    "DoctorReport",
    "FrameDecoder",
    "FrameError",
    "TransportError",
    "MODE_RECORD",
    "MODE_REPLAY",
    "ReplayReport",
    "Snapshot",
    "SymmetryConfig",
    "TraceLog",
    "TraceWriter",
    "assert_faithful_replay",
    "capture_snapshot",
    "compare_runs",
    "config_fingerprint",
    "diagnose",
    "machine_digest",
    "restore_vm",
    "sidecar_path",
]
