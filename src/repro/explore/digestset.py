"""A bounded distinct-digest set for long sweeps.

``Explorer`` (and the campaign parent that merges worker results)
deduplicates behaviour digests to count distinct behaviours.  A plain
``set`` grows with every distinct behaviour seen, which is unbounded on
a long sweep — a k=3 CHESS run or a week-long fuzz campaign would hold
millions of digests for a single integer at the end.

:class:`DigestSet` keeps memory bounded with Flajolet/Wegman *adaptive
sampling*: digests hash to 64-bit keys; the set stores only keys whose
low ``level`` bits are zero, and whenever the sample outgrows ``cap``
the level is raised (halving the sample, deterministically).  While
``level == 0`` the structure IS an exact set; beyond the cap,
``len(self)`` becomes the unbiased estimate ``samples << level`` and
``exact`` turns False.  Membership stays exact *within the sample*, and
the stored-key count never exceeds ``cap`` — the bound the regression
test pins.
"""

from __future__ import annotations


class DigestSet:
    """Distinct-count set over hex-digest strings, bounded at *cap* keys."""

    def __init__(self, cap: int = 65536, *, seed_digests=()):
        if cap < 8:
            raise ValueError("DigestSet cap must be >= 8")
        self.cap = cap
        self.level = 0
        self._keys: set[int] = set()
        for d in seed_digests:
            self.add(d)

    @staticmethod
    def _key(digest: str) -> int:
        # digests are already uniform hashes; fold the head to 64 bits
        return int(digest[:16], 16)

    def add(self, digest: str) -> bool:
        """Insert; returns True when the digest is new *to the sample*
        (at level 0 this is exact first-sight)."""
        key = self._key(digest)
        if self.level and key & ((1 << self.level) - 1):
            return False  # outside the current sample — already counted
        if key in self._keys:
            return False
        self._keys.add(key)
        while len(self._keys) > self.cap:
            self.level += 1
            mask = (1 << self.level) - 1
            self._keys = {k for k in self._keys if not k & mask}
        return True

    def __contains__(self, digest: str) -> bool:
        return self._key(digest) in self._keys

    @property
    def exact(self) -> bool:
        return self.level == 0

    @property
    def stored(self) -> int:
        """Keys actually held — bounded by ``cap`` at all times."""
        return len(self._keys)

    def __len__(self) -> int:
        """Distinct-count: exact below the cap, the adaptive-sampling
        estimate ``stored * 2**level`` beyond it."""
        return len(self._keys) << self.level

    def merge(self, other: "DigestSet") -> None:
        """Fold *other* in (campaign parents merge per-worker sets)."""
        self.level = max(self.level, other.level)
        mask = (1 << self.level) - 1
        self._keys = {k for k in self._keys if not k & mask}
        for k in other._keys:
            if not k & mask:
                self._keys.add(k)
        while len(self._keys) > self.cap:
            self.level += 1
            mask = (1 << self.level) - 1
            self._keys = {k for k in self._keys if not k & mask}
