"""Schedule policies: controlled preemption at yield points.

DejaVu's record mode normally takes its preemption decisions from the
virtual timer — the ``preemptive_hardware_bit`` sampled at each yield
point.  A :class:`SchedulePolicy` replaces that source: the controller
consults the policy at every *live* yield point, and the policy's yes/no
answer is what gets recorded.  The consequence the explorer builds on:

    a schedule **is** a DejaVu switch log.

A schedule chosen by the explorer is a sequence of yield-point deltas;
recording under it produces a trace whose switch stream is exactly that
sequence, and the standard replay path (``repro replay``, the debugger,
the profiler) consumes it with no knowledge that the schedule was chosen
rather than observed.

Positions vs deltas: a *position* is a 1-based index into the global
sequence of live yield points of the run (the controller consults the
policy exactly once per live yield point, across all threads).  A *delta*
is the distance since the previous preemption — the Figure-2 ``nyp``
value that lands in the switch stream.  ``deltas_from_positions`` converts
between the two; the explorer thinks in positions (they are stable when a
preemption is removed), the trace stores deltas.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol

from repro.vm.errors import VMError

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.threads import GreenThread


class SchedulePolicy(Protocol):
    """Decides, at each live yield point, whether to preempt now.

    ``nyp`` is the controller's yield-point counter *after* the increment
    for this yield point — i.e. the delta that will be recorded if the
    policy answers True (the counter then resets).
    """

    def should_preempt(self, thread: "GreenThread", nyp: int) -> bool: ...


def deltas_from_positions(positions: Iterable[int]) -> list[int]:
    """Absolute preemption positions -> switch-stream deltas."""
    deltas = []
    prev = 0
    for p in positions:
        if p <= prev:
            raise VMError(f"positions must be strictly increasing: {positions}")
        deltas.append(p - prev)
        prev = p
    return deltas


def positions_from_deltas(deltas: Iterable[int]) -> list[int]:
    """Switch-stream deltas -> absolute preemption positions."""
    positions = []
    at = 0
    for d in deltas:
        at += d
        positions.append(at)
    return positions


class DeltaSchedule:
    """Preempt after exactly the given yield-point deltas, then never.

    The deltas consumed are bit-identical to the switch stream the record
    run emits, so ``DeltaSchedule(trace.switches)`` re-records the same
    schedule and ``DeltaSchedule(deltas_from_positions(ps))`` realises an
    explorer-chosen one.  ``consulted`` counts the live yield points seen
    — after a run with no preemptions it is the schedule horizon.
    """

    def __init__(self, deltas: Iterable[int] = ()):
        self.deltas = list(deltas)
        if any(d < 1 for d in self.deltas):
            raise VMError(f"deltas must be >= 1: {self.deltas}")
        self._idx = 0
        self._since_switch = 0
        self.consulted = 0
        self.fired = 0

    @classmethod
    def at_positions(cls, positions: Iterable[int]) -> "DeltaSchedule":
        return cls(deltas_from_positions(positions))

    @property
    def exhausted(self) -> bool:
        return self._idx >= len(self.deltas)

    def should_preempt(self, thread: "GreenThread", nyp: int) -> bool:
        self.consulted += 1
        self._since_switch += 1
        if self._idx < len(self.deltas) and self._since_switch >= self.deltas[self._idx]:
            self._idx += 1
            self._since_switch = 0
            self.fired += 1
            return True
        return False
