"""Schedule minimization: ddmin over preemption positions.

A failing schedule found by randomized exploration may carry preemptions
that have nothing to do with the failure.  Classic delta debugging
(Zeller & Hildebrandt's ddmin) over the *set of absolute preemption
positions* strips them: removing a preemption leaves the survivors at
the same global yield points, so each candidate subset is still a
meaningful schedule, and each candidate is validated the only way that
counts — by re-recording under it and asking the oracle.

The result ships as a standard trace of the shortest schedule that still
trips the bug (1-minimal: removing any single remaining preemption makes
the failure disappear).
"""

from __future__ import annotations

from typing import Callable, Sequence


def ddmin(
    positions: Sequence[int],
    still_fails: Callable[[tuple[int, ...]], bool],
    *,
    max_tests: int = 200,
) -> tuple[tuple[int, ...], int]:
    """Minimise *positions* such that ``still_fails`` stays True.

    Returns ``(minimal_positions, tests_run)``.  Assumes
    ``still_fails(tuple(positions))`` holds; the result is 1-minimal
    unless ``max_tests`` re-validations run out first.
    """
    current = tuple(sorted(positions))
    tests = 0
    n = 2
    while len(current) >= 2 and n <= len(current):
        chunk = len(current) // n
        reduced = False
        # try removing one chunk at a time (test the complement)
        for i in range(n):
            lo = i * chunk
            hi = (i + 1) * chunk if i < n - 1 else len(current)
            candidate = current[:lo] + current[hi:]
            if not candidate:
                continue
            if tests >= max_tests:
                return current, tests
            tests += 1
            if still_fails(candidate):
                current = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n == len(current):
                break
            n = min(n * 2, len(current))
    return current, tests
