"""Systematic schedule exploration with preemption bounding.

The explorer turns the replay platform into a concurrency-testing tool.
Each candidate schedule is a set of preemption *positions* (global live
yield-point indices); recording the workload under the corresponding
:class:`~repro.explore.policy.DeltaSchedule` realises the schedule
deterministically — same positions, same execution, bit for bit — and
produces an ordinary DejaVu trace as a side effect.

Enumeration is CHESS-style preemption-bounded: schedules with 1, 2, ...,
``bound`` preemptions are enumerated exhaustively (in lexicographic
position order) up to the run budget; any remaining budget is spent on
seeded-random schedules with more preemptions than the bound.  Outcomes
are deduplicated by a digest of the observable behaviour (output, heap
digest, traps, deadlock) — the deterministic substrate means two
schedules with equal digests produced *identical* executions.

A schedule **fails** when the run traps, deadlocks, or the workload's
oracle rejects the result.  Every failure is shipped as a replayable
trace; the first one is ddmin-minimised (each candidate re-validated by
re-recording) and the minimised trace is verified by an actual replay.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.api import record as api_record, replay as api_replay
from repro.core.tracelog import TraceLog
from repro.explore.digestset import DigestSet
from repro.explore.minimize import ddmin
from repro.explore.policy import DeltaSchedule, deltas_from_positions
from repro.vm.errors import VMError
from repro.vm.machine import Environment, VMConfig
from repro.vm.timerdev import FixedClock, NeverTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import GuestProgram
    from repro.vm.scheduler_types import RunResult

#: an oracle inspects a run result; None means "acceptable", a string
#: names the failure
Oracle = Callable[["RunResult"], "str | None"]


def default_oracle(result: "RunResult") -> "str | None":
    """Failure means a trap or a deadlock; any clean completion passes."""
    if result.traps:
        tid, kind, detail = result.traps[0]
        return f"trap in thread {tid}: {detail}"
    if result.deadlocked:
        return f"deadlock: threads {list(result.deadlocked)}"
    return None


@dataclass
class Failure:
    """One failing schedule, packaged for reproduction."""

    positions: tuple[int, ...]
    reason: str
    trace: TraceLog
    output: str
    schedule_index: int  # how many schedules had run when this one failed

    @property
    def deltas(self) -> list[int]:
        return deltas_from_positions(self.positions)


@dataclass
class EvaluatedSchedule:
    """One schedule's run, judged: the unit of campaign work."""

    positions: tuple[int, ...]
    digest: str
    reason: "str | None"
    output: str
    trace: TraceLog

    @property
    def failed(self) -> bool:
        return self.reason is not None


@dataclass
class ExploreReport:
    horizon: int
    bound: int
    budget: int
    seed: int
    schedules_run: int
    unique_behaviors: int
    failures: list[Failure] = field(default_factory=list)
    minimized: "Failure | None" = None
    minimization_tests: int = 0

    @property
    def found(self) -> bool:
        return bool(self.failures)

    @property
    def schedules_to_first_failure(self) -> "int | None":
        return self.failures[0].schedule_index if self.failures else None

    def format(self) -> str:
        lines = [
            f"horizon: {self.horizon} yield points   bound: {self.bound}   "
            f"budget: {self.budget}   seed: {self.seed}",
            f"schedules run: {self.schedules_run}   "
            f"distinct behaviors: {self.unique_behaviors}",
        ]
        if not self.failures:
            lines.append("no failing schedule found")
            return "\n".join(lines)
        first = self.failures[0]
        lines.append(
            f"FAILURE after {first.schedule_index} schedules: {first.reason}"
        )
        lines.append(f"  preemption positions: {list(first.positions)}")
        if self.minimized is not None:
            lines.append(
                f"  minimized to {len(self.minimized.positions)} preemption(s) "
                f"at {list(self.minimized.positions)} "
                f"({self.minimization_tests} validation runs)"
            )
        return "\n".join(lines)


class Explorer:
    """Enumerate schedules over one workload; collect failing traces.

    ``factory`` must build a *fresh* GuestProgram per call (stateful
    natives — e.g. the server's network source — are per-instance).
    Every run uses the same deterministic knobs (NeverTimer, FixedClock,
    seeded Environment), so the schedule is the only variable.
    """

    def __init__(
        self,
        factory: "Callable[[], GuestProgram]",
        *,
        oracle: "Oracle | None" = None,
        bound: int = 2,
        budget: int = 250,
        seed: int = 0,
        env_seed: int = 0,
        config: VMConfig | None = None,
        max_failures: int = 1,
        minimize: bool = True,
        behavior_cap: int = 65536,
        check: "Callable[[], None] | None" = None,
    ):
        if bound < 1:
            raise VMError("preemption bound must be >= 1")
        self.factory = factory
        self.oracle = oracle or default_oracle
        self.bound = bound
        self.budget = budget
        self.seed = seed
        self.env_seed = env_seed
        self.config = config
        self.max_failures = max_failures
        self.minimize = minimize
        #: cooperative-cancellation seam: called once per schedule in
        #: :meth:`run`; raising a typed error there aborts the sweep at a
        #: schedule boundary (the serve daemon's deadline hook)
        self.check = check
        #: memory bound on the behaviour-digest dedup structure; beyond
        #: it ``unique_behaviors`` degrades to an unbiased estimate
        #: instead of the set growing without limit on long sweeps
        self.behavior_cap = behavior_cap

    # ------------------------------------------------------------------

    def _record(self, positions: tuple[int, ...]):
        program = self.factory()
        policy = DeltaSchedule.at_positions(positions)
        session = api_record(
            program,
            config=self.config,
            timer=NeverTimer(),
            clock=FixedClock(),
            env=Environment(seed=self.env_seed),
            schedule=policy,
        )
        session.trace.meta["program"] = program.name
        session.trace.meta["schedule"] = tuple(positions)
        return session, policy

    def _judge(self, result: "RunResult") -> "str | None":
        builtin = default_oracle(result)
        if builtin is not None:
            return builtin
        if self.oracle is not default_oracle:
            return self.oracle(result)
        return None

    @staticmethod
    def _digest(result: "RunResult") -> str:
        h = hashlib.blake2b(digest_size=16)
        h.update(result.output_text.encode())
        h.update(result.heap_digest.encode())
        h.update(repr(result.traps).encode())
        h.update(repr(result.deadlocked).encode())
        return h.hexdigest()

    def evaluate(self, positions: tuple[int, ...]) -> EvaluatedSchedule:
        """Record one schedule and judge it — the single-schedule unit
        both :meth:`run` and the parallel campaign worker execute."""
        session, _ = self._record(positions)
        return EvaluatedSchedule(
            positions=tuple(positions),
            digest=self._digest(session.result),
            reason=self._judge(session.result),
            output=session.result.output_text,
            trace=session.trace,
        )

    def candidates(self, horizon: int):
        """Exhaustive schedules for 1..bound preemptions, then seeded-
        random schedules beyond the bound (never repeating)."""
        seen: set[tuple[int, ...]] = set()
        for k in range(1, self.bound + 1):
            for combo in itertools.combinations(range(1, horizon + 1), k):
                seen.add(combo)
                yield combo
        rng = random.Random(self.seed)
        while True:
            k = rng.randint(self.bound + 1, self.bound + 3)
            if k >= horizon:
                return
            combo = tuple(sorted(rng.sample(range(1, horizon + 1), k)))
            if combo in seen:
                continue
            seen.add(combo)
            yield combo

    # ------------------------------------------------------------------

    def baseline(self) -> "tuple[EvaluatedSchedule, int]":
        """Schedule #0 — no preemptions — judged, plus the horizon it
        establishes (the campaign parent runs this once before sharding)."""
        session, policy = self._record(())
        return (
            EvaluatedSchedule(
                positions=(),
                digest=self._digest(session.result),
                reason=self._judge(session.result),
                output=session.result.output_text,
                trace=session.trace,
            ),
            policy.consulted,
        )

    def run(self) -> ExploreReport:
        base, horizon = self.baseline()
        behaviors = DigestSet(self.behavior_cap, seed_digests=(base.digest,))
        report = ExploreReport(
            horizon=horizon,
            bound=self.bound,
            budget=self.budget,
            seed=self.seed,
            schedules_run=1,
            unique_behaviors=1,
        )
        if base.failed:
            report.failures.append(
                Failure(
                    positions=(),
                    reason=base.reason,
                    trace=base.trace,
                    output=base.output,
                    schedule_index=1,
                )
            )

        for positions in self.candidates(horizon):
            if len(report.failures) >= self.max_failures:
                break
            if report.schedules_run >= self.budget:
                break
            if self.check is not None:
                self.check()
            evaluated = self.evaluate(positions)
            report.schedules_run += 1
            behaviors.add(evaluated.digest)
            if evaluated.failed:
                report.failures.append(
                    Failure(
                        positions=positions,
                        reason=evaluated.reason,
                        trace=evaluated.trace,
                        output=evaluated.output,
                        schedule_index=report.schedules_run,
                    )
                )
        report.unique_behaviors = len(behaviors)

        if report.failures and self.minimize and report.failures[0].positions:
            report.minimized, report.minimization_tests = self._minimize(
                report.failures[0]
            )
        elif report.failures:
            report.minimized = report.failures[0]
        return report

    # ------------------------------------------------------------------

    def _minimize(self, failure: Failure) -> tuple[Failure, int]:
        def still_fails(candidate: tuple[int, ...]) -> bool:
            session, _ = self._record(candidate)
            return self._judge(session.result) is not None

        minimal, tests = ddmin(failure.positions, still_fails)
        session, _ = self._record(minimal)
        reason = self._judge(session.result)
        assert reason is not None, "minimization lost the failure"
        minimized = Failure(
            positions=minimal,
            reason=reason,
            trace=session.trace,
            output=session.result.output_text,
            schedule_index=failure.schedule_index,
        )
        # the shipped artifact must actually reproduce: replay it
        replayed = api_replay(self.factory(), minimized.trace, config=self.config)
        if replayed.output_text != minimized.output:
            raise VMError("minimized trace did not replay to the failing output")
        return minimized, tests + 1


def explore(factory, **kwargs) -> ExploreReport:
    """One-call convenience around :class:`Explorer`."""
    return Explorer(factory, **kwargs).run()
