"""Happens-before race detection over a deterministic execution.

The detector maintains vector clocks per green thread and watches every
shared-memory micro-op through the engine's ``mem_hook`` — field and
array reads and writes, keyed by heap word address.  Synchronized-with
edges come from the thread package's observation hooks:

* monitor hand-offs — ``MonitorTable.on_release`` publishes the
  releaser's clock into a per-lock clock, ``on_acquire`` joins it into
  the acquirer (this covers ``wait``/``notify`` too: a wait is a full
  release followed, on the far side, by a re-acquisition);
* thread creation — ``Scheduler.on_spawn`` seeds the child's clock from
  the parent's;
* thread join — ``Scheduler.on_wakeup("join", dead, joiner)`` joins the
  dead thread's final clock into the joiner.

Two accesses to the same word race when neither happens before the other
and at least one is a write.  Per word the detector keeps FastTrack-style
epochs — the last write and the reads since it, each an ``(tid, clock)``
pair plus its source site — so the happens-before test per access is a
single clock comparison, not a full vector join.

**Perturbation-freedom.**  Every hook is host-side and read-only: the
detector allocates nothing in the guest heap, never blocks a thread, and
never touches the logical clocks.  Attached to a *replay*, it analyses
the recorded execution without the recorded execution being able to
tell; attached to a *record* run it leaves the trace bit-identical to an
undetected run (asserted by test).  It does force the baseline engine
config — fused superinstructions would hide memory accesses — which by
the EngineConfig determinism contract changes nothing guest-visible.

Known blind spots, accepted and documented: memory touched only from
inside native methods (e.g. ``System.arraycopy``) bypasses the bytecode
funnel; and a garbage collection moves objects, so address-keyed state
is discarded at each collection — races whose two halves straddle a
collection are missed.  (Joins of already-finished threads *do* create
an edge: the join native reports them to ``on_wakeup`` directly.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.controller import MODE_REPLAY, DejaVu
from repro.vm.compiler import (
    M_AALOAD,
    M_AASTORE,
    M_GETFIELD,
    M_GETSTATIC,
    M_IALOAD,
    M_IASTORE,
    M_PUTFIELD,
    M_PUTSTATIC,
)
from repro.vm.layout import HEADER_WORDS
from repro.vm.machine import VMConfig, with_baseline_engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import GuestProgram
    from repro.core.tracelog import TraceLog
    from repro.vm.machine import VirtualMachine
    from repro.vm.scheduler_types import RunResult
    from repro.vm.threads import GreenThread

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class AccessSite:
    """One side of a race: where a thread touched the word."""

    method: str  # qualified method name
    bci: int
    kind: str  # READ or WRITE
    tid: int

    def describe(self) -> str:
        return f"{self.kind} at {self.method} bci {self.bci} (thread {self.tid})"


@dataclass(frozen=True)
class Race:
    """An unordered conflicting pair: neither access happens before the other."""

    location: str  # "Main.balance", "Queue.count", "[I[3]", ...
    first: AccessSite  # the earlier access (program order of detection)
    second: AccessSite

    def describe(self) -> str:
        return (
            f"race on {self.location}: {self.first.describe()} "
            f"|| {self.second.describe()}"
        )


@dataclass(frozen=True)
class RegionSummary:
    """One closed race region: the window between two thread switches.

    ``racy`` is the verdict *at close time*; a race detected later can
    still pin this region retroactively (its earlier access lives here),
    which shows up in the detector's final ``racy_regions`` set — the
    set slim recording consults, since it classifies after the run.
    """

    index: int
    racy: bool
    n_accesses: int
    races: "tuple[Race, ...]"  # races first reported inside this region


class RaceDetector:
    """Attach to a VM before ``run``; read ``races`` after."""

    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        self.races: list[Race] = []
        self.stats = {
            "accesses": 0,
            "sync_edges": 0,
            "gc_invalidations": 0,
        }
        self._seen: set[tuple] = set()
        # vector clocks: tid -> {tid: clock}
        self._vc: dict[int, dict[int, int]] = {}
        # per-lock published clocks: lock addr -> {tid: clock}
        self._lock_vc: dict[int, dict[int, int]] = {}
        # FastTrack state per word address (last entry is the region index)
        self._write: dict[int, tuple[int, int, AccessSite, int]] = {}
        self._reads: dict[int, dict[int, tuple[int, AccessSite, int]]] = {}
        self._gc_seen = vm.collector.collections
        # incremental race-region summary: a region is the window between
        # two thread switches; the caller closes one with end_region()
        self.region_index = 0
        self.racy_regions: set[int] = set()
        self.regions: list[RegionSummary] = []
        self._region_accesses = 0
        self._region_new_races: list[Race] = []
        # words that ever raced: later windows touching one stay pinned
        self._racy_words: set[int] = set()
        vm.engine.mem_hook = self._on_mem
        vm.monitors.on_acquire = self._on_acquire
        vm.monitors.on_release = self._on_release
        vm.scheduler.on_spawn = self._on_spawn
        vm.scheduler.on_wakeup = self._on_wakeup

    # ------------------------------------------------------------------
    # vector clock plumbing

    def _clock(self, tid: int) -> dict[int, int]:
        vc = self._vc.get(tid)
        if vc is None:
            vc = {tid: 1}
            self._vc[tid] = vc
        return vc

    @staticmethod
    def _join(into: dict[int, int], other: dict[int, int]) -> None:
        for tid, clk in other.items():
            if clk > into.get(tid, 0):
                into[tid] = clk

    def _check_gc(self) -> None:
        collections = self.vm.collector.collections
        if collections != self._gc_seen:
            # the collector moved every object: address-keyed state is
            # meaningless now (re-keying through the forwarder would keep
            # dead objects alive, i.e. perturb the heap — so we drop it)
            self._gc_seen = collections
            self._write.clear()
            self._reads.clear()
            self._lock_vc.clear()
            self._racy_words.clear()
            self.stats["gc_invalidations"] += 1

    # ------------------------------------------------------------------
    # synchronized-with edges

    def _on_spawn(self, parent: "GreenThread | None", child: "GreenThread") -> None:
        child_vc = self._clock(child.tid)
        if parent is not None:
            self._join(child_vc, self._clock(parent.tid))
            parent_vc = self._clock(parent.tid)
            parent_vc[parent.tid] += 1
            self.stats["sync_edges"] += 1

    def _on_wakeup(self, cause: str, source: "GreenThread", target: "GreenThread") -> None:
        self._join(self._clock(target.tid), self._clock(source.tid))
        self.stats["sync_edges"] += 1

    def _on_acquire(self, addr: int, thread: "GreenThread") -> None:
        self._check_gc()
        lock_vc = self._lock_vc.get(addr)
        if lock_vc is not None:
            self._join(self._clock(thread.tid), lock_vc)
            self.stats["sync_edges"] += 1

    def _on_release(self, addr: int, thread: "GreenThread") -> None:
        self._check_gc()
        vc = self._clock(thread.tid)
        self._lock_vc[addr] = dict(vc)
        vc[thread.tid] += 1

    # ------------------------------------------------------------------
    # memory accesses

    def _on_mem(self, thread, frame, pc, mop, a, b, stack) -> None:
        if mop == M_GETFIELD:
            base = stack[-1]
            if not base:
                return
            word, kind, loc = base + a, READ, self._field_name(base, a)
        elif mop == M_PUTFIELD:
            base = stack[-2]
            if not base:
                return
            word, kind, loc = base + a, WRITE, self._field_name(base, a)
        elif mop == M_GETSTATIC:
            if not a.statics_addr:
                return
            word, kind, loc = a.statics_addr + b, READ, self._static_name(a, b)
        elif mop == M_PUTSTATIC:
            if not a.statics_addr:
                return
            word, kind, loc = a.statics_addr + b, WRITE, self._static_name(a, b)
        elif mop == M_IALOAD or mop == M_AALOAD:
            arr, idx = stack[-2], stack[-1]
            if not self._index_ok(arr, idx):
                return
            word, kind, loc = arr + HEADER_WORDS + idx, READ, self._elem_name(arr, idx)
        else:  # M_IASTORE / M_AASTORE
            arr, idx = stack[-3], stack[-2]
            if not self._index_ok(arr, idx):
                return
            word, kind, loc = arr + HEADER_WORDS + idx, WRITE, self._elem_name(arr, idx)
        self._check_gc()
        self.stats["accesses"] += 1
        self._region_accesses += 1
        region = self.region_index
        if word in self._racy_words:
            # any later touch of a word that ever raced keeps its window
            self.racy_regions.add(region)

        tid = thread.tid
        vc = self._clock(tid)
        site = AccessSite(
            method=frame.method.qualname,
            bci=frame.code.xbci_of[pc],
            kind=kind,
            tid=tid,
        )
        last_write = self._write.get(word)
        if last_write is not None:
            wt, wc, wsite, wregion = last_write
            if wt != tid and wc > vc.get(wt, 0):
                self._report(word, loc, wsite, site, wregion)
        if kind == READ:
            self._reads.setdefault(word, {})[tid] = (vc[tid], site, region)
        else:
            for rt, (rc, rsite, rregion) in self._reads.get(word, {}).items():
                if rt != tid and rc > vc.get(rt, 0):
                    self._report(word, loc, rsite, site, rregion)
            self._write[word] = (tid, vc[tid], site, region)
            self._reads[word] = {}

    def _report(
        self,
        word: int,
        location: str,
        first: AccessSite,
        second: AccessSite,
        first_region: int,
    ) -> None:
        # region pinning happens before (site-pair) dedup: a race seen
        # again in a later window still marks that window racy, and the
        # first access pins its own — possibly much earlier — window
        # retroactively, which seal-time slimming honours
        self._racy_words.add(word)
        self.racy_regions.add(self.region_index)
        self.racy_regions.add(first_region)
        key = (
            location,
            first.method,
            first.bci,
            first.kind,
            second.method,
            second.bci,
            second.kind,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        race = Race(location=location, first=first, second=second)
        self.races.append(race)
        self._region_new_races.append(race)

    def end_region(self) -> RegionSummary:
        """Close the current race region (called at each thread switch).

        Returns the closed region's summary and starts the next region.
        Safe to call with zero accesses (an empty window is never racy).
        """
        index = self.region_index
        summary = RegionSummary(
            index=index,
            racy=index in self.racy_regions,
            n_accesses=self._region_accesses,
            races=tuple(self._region_new_races),
        )
        self.regions.append(summary)
        self.region_index = index + 1
        self._region_accesses = 0
        self._region_new_races = []
        return summary

    # ------------------------------------------------------------------
    # naming (for reports only — never guest-visible)

    def _field_name(self, base: int, offset: int) -> str:
        try:
            layout = self.vm.om.layout_of(base)
        except Exception:
            return f"?+{offset}"
        for f in layout.instance_fields:
            if f.offset == offset:
                return f"{layout.name}.{f.name}"
        return f"{layout.name}+{offset}"

    def _static_name(self, rc, offset: int) -> str:
        layout = rc.statics_layout
        if layout is not None:
            for f in layout.instance_fields:
                if f.offset == offset:
                    return f"{rc.name}.{f.name}"
        return f"{rc.name}+{offset}"

    def _elem_name(self, arr: int, idx: int) -> str:
        try:
            layout = self.vm.om.layout_of(arr)
        except Exception:
            return f"?[{idx}]"
        return f"{layout.name}[{idx}]"

    def _index_ok(self, arr: int, idx: int) -> bool:
        if not arr:
            return False
        try:
            return 0 <= idx < self.vm.om.array_length(arr)
        except Exception:
            return False


@dataclass
class RaceReport:
    """Outcome of one detection replay."""

    races: list[Race]
    result: "RunResult"
    stats: dict

    def format(self) -> str:
        if not self.races:
            return "no races detected"
        lines = [f"{len(self.races)} race(s) detected:"]
        for race in self.races:
            lines.append("  " + race.describe())
        return "\n".join(lines)


def detect_races(
    program: "GuestProgram",
    trace: "TraceLog",
    *,
    config: VMConfig | None = None,
    symmetry=None,
) -> RaceReport:
    """Replay *trace* with the detector attached — perturbation-free by
    construction: replay is accurate, so the analysed execution is the
    recorded one, and the detector itself changes nothing observable."""
    from repro.api import build_vm

    vm = build_vm(program, with_baseline_engine(config))
    DejaVu(vm, MODE_REPLAY, trace=trace, symmetry=symmetry)
    detector = RaceDetector(vm)
    result = vm.run(program.main)
    return RaceReport(races=detector.races, result=result, stats=dict(detector.stats))
