"""Systematic concurrency testing on the replay substrate (``repro explore``).

The subsystem has four parts, layered strictly on existing mechanisms:

* :mod:`repro.explore.policy` — a :class:`SchedulePolicy` replaces the
  virtual timer as the record-side preemption source, so a schedule *is*
  a DejaVu switch log;
* :mod:`repro.explore.explorer` — CHESS-style preemption-bounded
  enumeration of schedules, deduplicated by behaviour digest, emitting
  every failure as a standard replayable ``.trace``;
* :mod:`repro.explore.detector` — happens-before race detection (vector
  clocks over shared-memory accesses), run during replay and therefore
  perturbation-free;
* :mod:`repro.explore.minimize` — ddmin over preemption positions, each
  candidate re-validated by re-recording.
"""

from repro.explore.detector import (
    AccessSite,
    Race,
    RaceDetector,
    RaceReport,
    detect_races,
)
from repro.explore.digestset import DigestSet
from repro.explore.explorer import (
    EvaluatedSchedule,
    ExploreReport,
    Explorer,
    Failure,
    default_oracle,
    explore,
)
from repro.explore.minimize import ddmin
from repro.explore.policy import (
    DeltaSchedule,
    SchedulePolicy,
    deltas_from_positions,
    positions_from_deltas,
)

__all__ = [
    "AccessSite",
    "DeltaSchedule",
    "DigestSet",
    "EvaluatedSchedule",
    "ExploreReport",
    "Explorer",
    "Failure",
    "Race",
    "RaceDetector",
    "RaceReport",
    "SchedulePolicy",
    "ddmin",
    "default_oracle",
    "deltas_from_positions",
    "detect_races",
    "explore",
    "positions_from_deltas",
]
