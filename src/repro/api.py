"""High-level convenience API: programs, recording, and replaying.

Typical use (also ``examples/quickstart.py``)::

    from repro.api import GuestProgram, record, replay
    from repro.core import assert_faithful_replay
    from repro.vm import SeededJitterTimer

    program = GuestProgram.from_source(SOURCE)
    session = record(program, timer=SeededJitterTimer(42))
    result = replay(program, session.trace)
    assert_faithful_replay(session.result, result)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from pathlib import Path

from repro.core.controller import MODE_RECORD, MODE_REPLAY, DejaVu
from repro.core.symmetry import SymmetryConfig
from repro.core.tracelog import TraceLog, TraceWriter, config_fingerprint
from repro.core.verify import ReplayReport, compare_runs
from repro.vm.asm import assemble
from repro.vm.classfile import ClassDef
from repro.vm.engineconfig import EngineConfig
from repro.vm.errors import (
    CheckpointConfigMismatch,
    CheckpointError,
    TracePrefixEnd,
    VMError,
)
from repro.vm.machine import (
    _DEFAULT,
    Environment,
    VirtualMachine,
    VMConfig,
    with_baseline_engine,
)
from repro.vm.scheduler_types import RunResult
from repro.vm.timerdev import TimerSource, WallClock, slim_model_of


@dataclass
class GuestProgram:
    """A runnable guest program: classes + entry point + native bindings."""

    classdefs: list[ClassDef]
    main: str = "Main.main()V"
    #: extra natives: (qualname, implementation, is_nondeterministic)
    natives: list[tuple[str, Callable, bool]] = field(default_factory=list)
    name: str = "program"

    @classmethod
    def from_source(
        cls,
        source: str,
        main: str = "Main.main()V",
        natives: Iterable[tuple[str, Callable, bool]] | None = None,
        name: str = "program",
    ) -> "GuestProgram":
        return cls(
            classdefs=assemble(source, source=name),
            main=main,
            natives=list(natives or []),
            name=name,
        )


#: named engine configurations for ``--engine`` and serve jobs — the
#: ablation layers in order.  One shared table is what makes the
#: daemon's byte-identity guarantee meaningful: a serve job naming a
#: preset resolves to *exactly* the EngineConfig the CLI one-shot uses.
ENGINE_PRESETS = {
    "baseline": EngineConfig.baseline(),
    "threaded": EngineConfig(threaded_dispatch=True, fusion=False, inline_caches=False),
    "fused": EngineConfig(threaded_dispatch=True, fusion=True, inline_caches=False),
    "full": EngineConfig(),
}


def standard_knobs(seed: "int | None") -> dict:
    """The platform's one seed→determinism-knobs mapping.

    ``seed=None`` is a live host run (host timer + host clock);
    an integer seed selects the seeded jitter timer/clock and seeded
    environment the CLI's ``--seed`` flag uses.  The CLI and the serve
    daemon both build their VMs through this function, so a daemon job
    with a given seed is byte-identical to ``repro record --seed N``.
    """
    from repro.vm.timerdev import (
        HostClock,
        HostTimer,
        SeededJitterClock,
        SeededJitterTimer,
    )

    if seed is None:
        return dict(timer=HostTimer(), clock=HostClock())
    return dict(
        timer=SeededJitterTimer(seed, 40, 200),
        clock=SeededJitterClock(seed),
        env=Environment(seed=seed),
    )


def build_vm(
    program: GuestProgram,
    config: VMConfig | None = None,
    *,
    timer: TimerSource | None | object = _DEFAULT,
    clock: WallClock | None = None,
    env: Environment | None = None,
) -> VirtualMachine:
    """A fresh VM with *program* declared (VMs are single-run).

    Leave *timer* unset for the VM's default; pass an explicit
    :class:`TimerSource` to control preemption, or ``None`` to disable
    the preemption timer entirely.
    """
    vm = VirtualMachine(config, timer=timer, clock=clock, env=env)
    vm.declare(program.classdefs)
    for qualname, fn, nondet in program.natives:
        vm.register_native(qualname, fn, nondet=nondet)
    return vm


@dataclass
class RecordedRun:
    """Outcome of :func:`record`: the run's results plus its trace."""

    result: RunResult
    trace: TraceLog
    stats: dict


def record(
    program: GuestProgram,
    *,
    config: VMConfig | None = None,
    timer: TimerSource | None | object = _DEFAULT,
    clock: WallClock | None = None,
    env: Environment | None = None,
    symmetry: SymmetryConfig | None = None,
    out: "str | Path | None" = None,
    compress: bool = False,
    extra_meta: dict | None = None,
    vm_hook: "Callable[[VirtualMachine], None] | None" = None,
    checkpoint_every: int | None = None,
    slim: bool = False,
    **dejavu_kwargs,
) -> RecordedRun:
    """Execute *program* under DejaVu record mode; return results + trace.

    With ``out`` set, the recording streams to ``<out>.tmp`` in full
    checksummed segments as it runs and is atomically sealed onto *out* at
    a clean end — if the run dies mid-record (guest error, injected fault,
    host crash short of kernel death), the tmp file keeps every segment
    flushed so far and :meth:`TraceLog.salvage` recovers the prefix.

    ``vm_hook`` runs on the freshly built VM before the controller
    attaches — the seam the fault-injection harness uses to sabotage
    natives without its own copy of the record sequence.

    ``checkpoint_every`` captures a machine snapshot every N cycles into
    ``<out>.ckpt`` (record-mode snapshots serve digests and listings;
    only replay-side checkpoints are restorable).  The capture hook is
    host-side and guest-invisible, so the recording itself stays
    byte-identical with checkpointing on or off.

    ``slim=True`` asks for race-guided trace slimming (format v3.2): a
    FastTrack detector rides along classifying each inter-switch window,
    and at seal time every sync-inferable switch delta is dropped from
    the switch stream — replay re-derives them from the modelled timer
    device plus a compact sync-order sidecar.  Slimming needs a timer
    with a reconstruction model (the VM default fixed timer, a pristine
    seeded jitter timer, ``NeverTimer``, or ``timer=None``) and the
    default symmetry/schedule setup; anything else falls back to a full
    recording with the reason in ``trace.meta["slim_fallback"]``.  The
    recording itself is guest-bit-identical either way — classification
    is entirely host-side and happens after the run.

    Extra keyword arguments (e.g. ``switch_buffer_words``) are forwarded
    to the :class:`DejaVu` controller.
    """
    slim_fallback = None
    if slim:
        if symmetry is not None:
            slim_fallback = "non-default symmetry"
        elif dejavu_kwargs.get("schedule") is not None:
            slim_fallback = "schedule-policy recording"
        else:
            # the detector needs the unfused memory-op funnel; baseline is
            # guest-invisible, so traces stay byte-identical regardless
            config = with_baseline_engine(config)
    vm = build_vm(program, config, timer=timer, clock=clock, env=env)
    if vm_hook is not None:
        vm_hook(vm)
    slim_spec = None
    detector = None
    if slim and slim_fallback is None:
        slim_spec = slim_model_of(vm.timer)
        if slim_spec is None:
            slim_fallback = "timer has no reconstruction model"
        else:
            from repro.explore.detector import RaceDetector

            detector = RaceDetector(vm)
    writer = (
        TraceWriter(out, compress=compress, slim=slim_spec is not None)
        if out is not None
        else None
    )
    dejavu = DejaVu(vm, MODE_RECORD, symmetry=symmetry, writer=writer,
                    slim_spec=slim_spec, slim_detector=detector, **dejavu_kwargs)
    recorder = _make_recorder(vm, checkpoint_every, out)
    try:
        result = vm.run(program.main)
        trace = dejavu.trace()
        trace.meta["program"] = program.name
        # fingerprint only what the guest can feel (heap/stack/cycles):
        # engine toggles are guest-invisible and deliberately left out so
        # trace files stay byte-identical across engine combinations
        trace.meta["config"] = config_fingerprint(vm.config)
        if slim_fallback is not None:
            trace.meta["slim_fallback"] = slim_fallback
        trace.meta.update(extra_meta or {})
        if writer is not None:
            if slim_spec is not None:
                # slim recording keeps switch deltas host-side so the
                # seal-time partition can rewrite the stream; push the
                # final streams through the writer's spilling sinks now
                for w in trace.switches:
                    writer.switch_sink.append(w)
                for w in trace.slim:
                    writer.slim_sink.append(w)
            writer.seal(trace.meta)
        if recorder is not None:
            recorder.seal(program=program.name)
    except BaseException:
        # leave the tmp file exactly as the crash would: a salvageable
        # prefix of intact segments, and nothing at the final path
        if writer is not None:
            writer.abandon()
        if recorder is not None:
            recorder.abandon()
        raise
    return RecordedRun(result=result, trace=trace, stats=dict(dejavu.stats))


def _make_recorder(vm, checkpoint_every, out, checkpoint_out=None):
    if not checkpoint_every:
        return None
    from repro.core.checkpoint import (
        CheckpointRecorder,
        CheckpointWriter,
        sidecar_path,
    )

    if checkpoint_out is None and out is not None:
        checkpoint_out = sidecar_path(out)
    writer = CheckpointWriter(checkpoint_out) if checkpoint_out is not None else None
    return CheckpointRecorder(vm, checkpoint_every, writer=writer)


def replay(
    program: GuestProgram,
    trace: TraceLog,
    *,
    config: VMConfig | None = None,
    symmetry: SymmetryConfig | None = None,
    checkpoint_every: int | None = None,
    checkpoint_out: "str | Path | None" = None,
    vm_hook: "Callable[[VirtualMachine], None] | None" = None,
    **dejavu_kwargs,
) -> RunResult:
    """Re-execute *program* driven by *trace*; raises
    :class:`~repro.vm.errors.ReplayDivergenceError` if replay diverges.

    ``checkpoint_every`` captures restorable machine snapshots every N
    cycles; with ``checkpoint_out`` they stream to that sidecar file
    (sealed atomically at a clean end, salvageable from its tmp after a
    crash — the artifact :func:`resume_replay` and ``repro replay
    --resume`` pick up).

    ``vm_hook`` runs on the freshly built VM before the controller
    attaches — mirrors :func:`record`'s seam; the serve daemon uses it
    to install its cooperative-cancellation safe-point hook.
    """
    vm = build_vm(program, config)
    if vm_hook is not None:
        vm_hook(vm)
    DejaVu(vm, MODE_REPLAY, trace=trace, symmetry=symmetry, **dejavu_kwargs)
    recorder = _make_recorder(vm, checkpoint_every, None, checkpoint_out)
    try:
        result = vm.run(program.main)
        if recorder is not None:
            recorder.seal(program=program.name)
    except BaseException:
        if recorder is not None:
            recorder.abandon()
        raise
    return result


@dataclass
class ResumedReplay:
    """Outcome of :func:`resume_replay`: the result plus where the
    fallback ladder actually landed."""

    result: RunResult
    #: cycle count of the checkpoint the run resumed from (None: zero)
    resumed_from: int | None
    #: human-readable ladder steps, in the order they were taken
    attempts: list[str] = field(default_factory=list)

    @property
    def from_zero(self) -> bool:
        return self.resumed_from is None


def resume_replay(
    program: GuestProgram,
    trace: TraceLog,
    *,
    checkpoints: "str | Path | None" = None,
    config: VMConfig | None = None,
    symmetry: SymmetryConfig | None = None,
) -> ResumedReplay:
    """Finish a replay from the newest usable checkpoint in *checkpoints*
    (a ``<trace>.ckpt`` sidecar path; a crashed writer's ``.tmp`` is
    picked up automatically).

    Degrades gracefully: CRC-damaged sidecar tails and digest-failing
    snapshots are skipped at load, a snapshot whose restore or resumed
    replay fails falls back to the next earlier one, and when nothing
    survives the replay runs from cycle zero.  The only non-recoverable
    case is :class:`CheckpointConfigMismatch` — every checkpoint shares
    the config, so it propagates as a typed diagnostic instead.
    """
    from repro.core.checkpoint import CheckpointStore, restore_vm

    attempts: list[str] = []
    store = None
    if checkpoints is not None:
        try:
            store = CheckpointStore.load(checkpoints)
        except CheckpointError as exc:
            attempts.append(f"sidecar unusable: {exc}")
    if store is not None:
        if store.error:
            attempts.append(f"sidecar scan stopped early: {store.error}")
        if store.skipped:
            attempts.append(
                f"skipped {store.skipped} snapshot(s) failing digest verification"
            )
        for snap in store.newest_first():
            try:
                vm = restore_vm(
                    snap, program, trace, config=config, symmetry=symmetry
                )
            except CheckpointConfigMismatch:
                raise
            except VMError as exc:
                attempts.append(f"checkpoint @{snap.cycles} unusable: {exc}")
                continue
            try:
                vm.engine.run()
                result = vm.finish()
            except VMError as exc:
                attempts.append(
                    f"resumed @{snap.cycles} but replay failed: {exc}"
                )
                continue
            attempts.append(f"resumed from checkpoint @{snap.cycles}")
            return ResumedReplay(result, snap.cycles, attempts)
    attempts.append("replayed from cycle zero")
    result = replay(program, trace, config=config, symmetry=symmetry)
    return ResumedReplay(result, None, attempts)


@dataclass
class PrefixReplay:
    """Outcome of :func:`replay_prefix` over a salvaged trace."""

    result: RunResult
    complete: bool  # True: the whole (truncated) trace drove a full run
    words_consumed: int
    detail: str = ""


def replay_prefix(
    program: GuestProgram,
    trace: TraceLog,
    *,
    config: VMConfig | None = None,
    symmetry: SymmetryConfig | None = None,
    **dejavu_kwargs,
) -> PrefixReplay:
    """Replay a salvaged (truncated) trace to the end of its prefix.

    A salvaged trace stops where the recorder died, so exhausting it is
    the *expected* end state, not a divergence: the controller raises
    :class:`TracePrefixEnd` there, and this harness converts it into a
    partial :class:`RunResult` snapshot.  A trace that is not marked
    truncated goes through the strict :func:`replay` path instead.
    """
    if not trace.truncated:
        return PrefixReplay(
            result=replay(program, trace, config=config, symmetry=symmetry,
                          **dejavu_kwargs),
            complete=True,
            words_consumed=len(trace.values),
            detail="trace is sealed; full strict replay",
        )
    vm = build_vm(program, config)
    DejaVu(vm, MODE_REPLAY, trace=trace, symmetry=symmetry, **dejavu_kwargs)
    try:
        result = vm.run(program.main)
        return PrefixReplay(
            result=result,
            complete=True,
            words_consumed=len(trace.values),
            detail="the surviving prefix drove the program to completion",
        )
    except TracePrefixEnd as end:
        result = vm.finish()
        return PrefixReplay(
            result=result,
            complete=False,
            words_consumed=end.words_consumed,
            detail=str(end),
        )


def trace_to_bytes(trace: TraceLog) -> bytes:
    """Serialize *trace* to the sealed on-disk byte format (v3.1, or
    v3.2 when the trace carries a slim sidecar).

    The encoding is deterministic in the trace's streams and meta (no
    timestamps, fixed codec choice), so equal traces serialize to equal
    bytes — the property the content-addressed corpus and the
    jobs=1 ≡ jobs=N differential tests rely on.
    """
    import os
    import tempfile

    fd, name = tempfile.mkstemp(suffix=".djv")
    os.close(fd)
    try:
        trace.save(name)
        return Path(name).read_bytes()
    finally:
        Path(name).unlink(missing_ok=True)


def trace_from_bytes(data: bytes) -> TraceLog:
    """Load a trace from sealed bytes (inverse of :func:`trace_to_bytes`)."""
    import os
    import tempfile

    fd, name = tempfile.mkstemp(suffix=".djv")
    os.close(fd)
    try:
        Path(name).write_bytes(data)
        return TraceLog.load(name)
    finally:
        Path(name).unlink(missing_ok=True)


def record_and_replay(
    program: GuestProgram,
    *,
    config: VMConfig | None = None,
    timer: TimerSource | None | object = _DEFAULT,
    clock: WallClock | None = None,
    env: Environment | None = None,
    symmetry: SymmetryConfig | None = None,
) -> tuple[RecordedRun, RunResult, ReplayReport]:
    """Record once, replay once, and compare — the end-to-end check."""
    session = record(
        program, config=config, timer=timer, clock=clock, env=env, symmetry=symmetry
    )
    replayed = replay(program, session.trace, config=config, symmetry=symmetry)
    return session, replayed, compare_runs(session.result, replayed)


def worker_serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    background: bool = False,
    log=None,
):
    """Start a remote campaign worker daemon (the `repro worker` API).

    With ``background=True`` the daemon serves on a daemon thread and
    the started :class:`~repro.campaign.remote.WorkerServer` is returned
    immediately (``server.address`` is the bound ``(host, port)``; call
    ``server.stop()`` when done).  Otherwise this blocks, serving until
    interrupted.  Campaign parents reach it via ``hosts=[(host, port)]``
    on :func:`repro.campaign.run_explore_campaign` /
    :func:`repro.campaign.run_faults_campaign`, or ``--hosts`` on the
    CLI.
    """
    from repro.campaign.remote import WorkerServer

    server = WorkerServer(host=host, port=port, log=log)
    if background:
        return server.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return server
