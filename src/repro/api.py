"""High-level convenience API: programs, recording, and replaying.

Typical use (also ``examples/quickstart.py``)::

    from repro.api import GuestProgram, record, replay
    from repro.core import assert_faithful_replay
    from repro.vm import SeededJitterTimer

    program = GuestProgram.from_source(SOURCE)
    session = record(program, timer=SeededJitterTimer(42))
    result = replay(program, session.trace)
    assert_faithful_replay(session.result, result)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.controller import MODE_RECORD, MODE_REPLAY, DejaVu
from repro.core.symmetry import SymmetryConfig
from repro.core.tracelog import TraceLog
from repro.core.verify import ReplayReport, compare_runs
from repro.vm.asm import assemble
from repro.vm.classfile import ClassDef
from repro.vm.machine import _DEFAULT, Environment, VirtualMachine, VMConfig
from repro.vm.scheduler_types import RunResult
from repro.vm.timerdev import TimerSource, WallClock


@dataclass
class GuestProgram:
    """A runnable guest program: classes + entry point + native bindings."""

    classdefs: list[ClassDef]
    main: str = "Main.main()V"
    #: extra natives: (qualname, implementation, is_nondeterministic)
    natives: list[tuple[str, Callable, bool]] = field(default_factory=list)
    name: str = "program"

    @classmethod
    def from_source(
        cls,
        source: str,
        main: str = "Main.main()V",
        natives: Iterable[tuple[str, Callable, bool]] | None = None,
        name: str = "program",
    ) -> "GuestProgram":
        return cls(
            classdefs=assemble(source, source=name),
            main=main,
            natives=list(natives or []),
            name=name,
        )


def build_vm(
    program: GuestProgram,
    config: VMConfig | None = None,
    *,
    timer: TimerSource | None | object = _DEFAULT,
    clock: WallClock | None = None,
    env: Environment | None = None,
) -> VirtualMachine:
    """A fresh VM with *program* declared (VMs are single-run).

    Leave *timer* unset for the VM's default; pass an explicit
    :class:`TimerSource` to control preemption, or ``None`` to disable
    the preemption timer entirely.
    """
    vm = VirtualMachine(config, timer=timer, clock=clock, env=env)
    vm.declare(program.classdefs)
    for qualname, fn, nondet in program.natives:
        vm.register_native(qualname, fn, nondet=nondet)
    return vm


@dataclass
class RecordedRun:
    """Outcome of :func:`record`: the run's results plus its trace."""

    result: RunResult
    trace: TraceLog
    stats: dict


def record(
    program: GuestProgram,
    *,
    config: VMConfig | None = None,
    timer: TimerSource | None | object = _DEFAULT,
    clock: WallClock | None = None,
    env: Environment | None = None,
    symmetry: SymmetryConfig | None = None,
    **dejavu_kwargs,
) -> RecordedRun:
    """Execute *program* under DejaVu record mode; return results + trace.

    Extra keyword arguments (e.g. ``switch_buffer_words``) are forwarded
    to the :class:`DejaVu` controller.
    """
    vm = build_vm(program, config, timer=timer, clock=clock, env=env)
    dejavu = DejaVu(vm, MODE_RECORD, symmetry=symmetry, **dejavu_kwargs)
    result = vm.run(program.main)
    trace = dejavu.trace()
    trace.meta["program"] = program.name
    return RecordedRun(result=result, trace=trace, stats=dict(dejavu.stats))


def replay(
    program: GuestProgram,
    trace: TraceLog,
    *,
    config: VMConfig | None = None,
    symmetry: SymmetryConfig | None = None,
    **dejavu_kwargs,
) -> RunResult:
    """Re-execute *program* driven by *trace*; raises
    :class:`~repro.vm.errors.ReplayDivergenceError` if replay diverges."""
    vm = build_vm(program, config)
    DejaVu(vm, MODE_REPLAY, trace=trace, symmetry=symmetry, **dejavu_kwargs)
    return vm.run(program.main)


def record_and_replay(
    program: GuestProgram,
    *,
    config: VMConfig | None = None,
    timer: TimerSource | None | object = _DEFAULT,
    clock: WallClock | None = None,
    env: Environment | None = None,
    symmetry: SymmetryConfig | None = None,
) -> tuple[RecordedRun, RunResult, ReplayReport]:
    """Record once, replay once, and compare — the end-to-end check."""
    session = record(
        program, config=config, timer=timer, clock=clock, env=env, symmetry=symmetry
    )
    replayed = replay(program, session.trace, config=config, symmetry=symmetry)
    return session, replayed, compare_runs(session.result, replayed)
