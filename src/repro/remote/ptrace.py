"""The simulated OS debugging interface (Unix ``ptrace`` in the paper).

A :class:`DebugPort` gives a tool VM raw *read-only* word access to an
application VM's memory.  Two properties carry the paper's perturbation-
freedom argument:

1. the target VM **executes no code** in response to queries — the port
   reads memory words directly;
2. the port **cannot write** — there is no poke operation at all, so the
   debugger cannot perturb the application even by accident.  (The paper
   permits explicit user-initiated writes at the cost of replay accuracy;
   we surface that as a separate, loudly named escape hatch.)

Every read is counted, so tests can assert both that inspection happened
and that nothing else did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.vm.errors import VMError
from repro.vm.memory import BOOT_WORDS, MAGIC

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine


class DebugPort:
    """Read-only window into *target*'s memory, as an OS debugger would have."""

    def __init__(self, target: "VirtualMachine"):
        self._memory = target.memory
        if self._memory.boot_read(0) != MAGIC:
            raise VMError("target does not look like a VM (bad boot magic)")
        self.reads = 0

    def peek(self, addr: int) -> int:
        """Read one word of remote memory."""
        self.reads += 1
        return self._memory.read(addr)

    def peek_range(self, addr: int, count: int) -> list[int]:
        """Read *count* consecutive words (cloning primitive arrays, §3.3)."""
        self.reads += count
        return self._memory.read_range(addr, count)

    def boot(self, slot: int) -> int:
        """Read a boot-record root slot (how the debugger finds everything)."""
        if not (0 <= slot < BOOT_WORDS):
            raise VMError(f"bad boot slot {slot}")
        self.reads += 1
        return self._memory.boot_read(slot)

    # NOTE deliberately absent: poke().  See module docstring.


class IntrusivePort(DebugPort):
    """The explicit escape hatch: a port that *can* write remote memory.

    Using it during a replay irrevocably breaks the symmetry between
    record and replay — the paper's footnote 3.  It exists so tests and
    examples can demonstrate exactly that breakage.
    """

    def __init__(self, target: "VirtualMachine"):
        super().__init__(target)
        self.writes = 0

    def poke(self, addr: int, value: int) -> None:
        self.writes += 1
        self._memory.write(addr, value)
