"""Mapped methods (§3.1): where remote objects come from.

"To set up the association between the two JVMs, the user specifies a
list of reflection methods that are said to be *mapped*: when they are
executed in the tool JVM, they return a remote object that represents the
actual object in the remote JVM."

A mapping binds a method qualname to a resolver function that computes
the remote address (typically by following boot-record roots through raw
memory).  The default list maps the ``VM_Dictionary`` accessors — enough
to reach every piece of reflection metadata, and from there (Figure 3)
every method's line table.
"""

from __future__ import annotations

from typing import Callable

from repro.remote.remote_object import RemoteObject, RemoteResolver
from repro.vm.errors import VMError
from repro.vm.memory import BOOT_THREADS

#: a mapping resolver returns a remote value: int, None, or RemoteObject
MappingFn = Callable[[RemoteResolver], object]


class MappedMethods:
    def __init__(self) -> None:
        self._mappings: dict[str, MappingFn] = {}

    def map(self, qualname: str, fn: MappingFn) -> None:
        self._mappings[qualname] = fn

    def lookup(self, qualname: str) -> MappingFn | None:
        return self._mappings.get(qualname)

    def __contains__(self, qualname: str) -> bool:
        return qualname in self._mappings

    def names(self) -> list[str]:
        return sorted(self._mappings)


def _dict_static_field(resolver: RemoteResolver, field: str):
    holder = resolver.dictionary_addr()
    rc = resolver.loader.classes["VM_Dictionary"]
    assert rc.statics_layout is not None
    slot = rc.statics_layout.field_by_name[field]
    word = resolver.port.peek(holder + slot.offset)
    if slot.desc == "I":
        return word
    if word == 0:
        return None
    return RemoteObject(resolver, word)


def _remote_methods(resolver: RemoteResolver):
    return _dict_static_field(resolver, "methods")


def _remote_classes(resolver: RemoteResolver):
    return _dict_static_field(resolver, "classes")


def _remote_method_count(resolver: RemoteResolver):
    return _dict_static_field(resolver, "methodCount")


def _remote_threads(resolver: RemoteResolver):
    addr = resolver.port.boot(BOOT_THREADS)
    if addr == 0:
        raise VMError("remote VM has no thread table yet")
    return RemoteObject(resolver, addr)


def default_mappings() -> MappedMethods:
    """The standard mapped-method list for a DejaVu debugger."""
    mm = MappedMethods()
    mm.map("VM_Dictionary.getMethods()[LVM_Method;", _remote_methods)
    mm.map("VM_Dictionary.getClasses()[LVM_Class;", _remote_classes)
    mm.map("VM_Dictionary.getMethodCount()I", _remote_method_count)
    return mm


def remote_thread_table(resolver: RemoteResolver) -> RemoteObject:
    """The remote Thread[] (used by the debugger's thread viewer)."""
    result = _remote_threads(resolver)
    assert isinstance(result, RemoteObject)
    return result


__all__ = [
    "MappedMethods",
    "MappingFn",
    "default_mappings",
    "remote_thread_table",
]
