"""Remote reflection (§3): perturbation-free inspection across VMs.

* :class:`repro.remote.ptrace.DebugPort` — the OS-debug-interface stand-in:
  raw, **read-only** word access into another VM's memory.  The target VM
  executes no code on the debugger's behalf.
* :class:`repro.remote.remote_object.RemoteObject` — the proxy for an
  object living in the remote VM; field/array access computes remote
  addresses from the tool VM's (identical) class layouts and peeks the
  values through the port.
* :class:`repro.remote.mapping.MappedMethods` — the user-specified list of
  reflection methods whose invocation in the tool VM is intercepted to
  return remote objects (e.g. ``VM_Dictionary.getMethods``).
* :class:`repro.remote.interp_ext.ToolInterpreter` — "a standard Java
  interpreter extended to implement remote reflection": a bytecode
  interpreter for the tool VM in which the reference bytecodes operate
  transparently on remote objects.
* :class:`repro.remote.reflector.RemoteReflector` — a host-side facade
  over the same machinery, used by the debugger core.
"""

from repro.remote.interp_ext import ToolInterpreter
from repro.remote.mapping import MappedMethods, default_mappings
from repro.remote.ptrace import DebugPort
from repro.remote.reflector import RemoteReflector
from repro.remote.remote_object import RemoteObject, RemoteResolver

__all__ = [
    "DebugPort",
    "MappedMethods",
    "RemoteObject",
    "RemoteReflector",
    "RemoteResolver",
    "ToolInterpreter",
    "default_mappings",
]
