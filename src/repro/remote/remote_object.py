"""Remote objects: typed proxies for objects in another VM (§3.1, §3.3).

"To implement the remote object, it was sufficient to record the type of
the object and its real address."  A :class:`RemoteObject` holds exactly
that — a :class:`~repro.vm.layout.Layout` and a remote address — plus the
port to read through.  Dereferencing a reference field or element yields
another remote object; dereferencing a primitive fetches the value.

Type resolution crosses the VM boundary through the *remote* VM's own
heap metadata: a class id peeked out of a remote header is looked up in
the remote ``VM_Dictionary`` (``classId`` → name), then resolved to the
tool VM's identical layout.  The tool loader can therefore describe any
remote object — including array classes the application created at run
time — without the remote VM running a single instruction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.remote.ptrace import DebugPort
from repro.vm.descriptors import class_name, is_array, is_reference
from repro.vm.errors import VMError
from repro.vm.layout import HEADER_AUX, HEADER_CLASS, HEADER_WORDS, Layout
from repro.vm.memory import BOOT_DICTIONARY

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.loader import Loader


class RemoteResolver:
    """Maps remote class ids to tool-VM layouts via remote metadata."""

    def __init__(self, port: DebugPort, tool_loader: "Loader"):
        self.port = port
        self.loader = tool_loader
        self._cache: dict[int, Layout] = {}

    # -- remote metadata walking ------------------------------------------

    def _dict_statics_layout(self) -> Layout:
        rc = self.loader.classes["VM_Dictionary"]
        assert rc.statics_layout is not None
        return rc.statics_layout

    def dictionary_addr(self) -> int:
        addr = self.port.boot(BOOT_DICTIONARY)
        if addr == 0:
            raise VMError("remote VM has no VM_Dictionary (not bootstrapped?)")
        return addr

    def remote_class_name(self, class_id: int) -> str:
        """Find the remote VM_Class with *class_id* and decode its name."""
        holder = self.dictionary_addr()
        slayout = self._dict_statics_layout()
        classes_arr = self.port.peek(holder + slayout.field_by_name["classes"].offset)
        count = self.port.peek(holder + slayout.field_by_name["classCount"].offset)
        vmc_layout = self.loader.classes["VM_Class"].layout
        id_off = vmc_layout.field_by_name["classId"].offset
        name_off = vmc_layout.field_by_name["name"].offset
        for i in range(count):
            vmc = self.port.peek(classes_arr + HEADER_WORDS + i)
            if vmc and self.port.peek(vmc + id_off) == class_id:
                return self.read_remote_string(self.port.peek(vmc + name_off))
        raise VMError(f"remote class id {class_id} not in remote dictionary")

    def read_remote_string(self, addr: int) -> str:
        """Decode a remote String via its chars array."""
        chars_off = self.loader.classes["String"].layout.field_by_name["chars"].offset
        chars = self.port.peek(addr + chars_off)
        length = self.port.peek(chars + HEADER_AUX)
        return "".join(chr(c) for c in self.port.peek_range(chars + HEADER_WORDS, length))

    # -- layout resolution ---------------------------------------------------

    def layout_for_remote(self, addr: int) -> Layout:
        """Layout of the remote object at *addr* (cached per class id).

        The class id from the remote header is translated to a *name* via
        the remote dictionary, then resolved against the tool VM's own
        classes (the tool JVM "loads the classes and executes the
        reflection methods" — §3).  If the tool VM was not given the
        application class, we degrade to the nearest ancestor it does
        know (walking the remote ``superId`` chain), which still exposes
        the inherited fields — e.g. a ``Thread`` subclass's tid/stack.
        """
        class_id = self.port.peek(addr + HEADER_CLASS)
        layout = self._cache.get(class_id)
        if layout is not None:
            return layout
        name = self.remote_class_name(class_id)
        if name.startswith("["):
            layout = self.loader.array_layout(name)
        elif name.startswith("Statics$"):
            rc = self.loader.ensure_layout(name[len("Statics$") :])
            if rc.statics_layout is None:
                raise VMError(f"tool VM has no statics layout for {name}")
            layout = rc.statics_layout
        else:
            layout = self._resolve_scalar(class_id, name)
        self._cache[class_id] = layout
        return layout

    def _resolve_scalar(self, class_id: int, name: str) -> Layout:
        walk_id, walk_name = class_id, name
        while True:
            if self.loader.class_exists(walk_name):
                return self.loader.ensure_layout(walk_name).layout
            walk_id = self._remote_super_id(walk_id)
            if walk_id < 0:
                raise VMError(f"tool VM knows no ancestor of remote class {name}")
            walk_name = self.remote_class_name(walk_id)

    def _remote_super_id(self, class_id: int) -> int:
        holder = self.dictionary_addr()
        slayout = self._dict_statics_layout()
        classes_arr = self.port.peek(holder + slayout.field_by_name["classes"].offset)
        count = self.port.peek(holder + slayout.field_by_name["classCount"].offset)
        vmc_layout = self.loader.classes["VM_Class"].layout
        id_off = vmc_layout.field_by_name["classId"].offset
        super_off = vmc_layout.field_by_name["superId"].offset
        for i in range(count):
            vmc = self.port.peek(classes_arr + HEADER_WORDS + i)
            if vmc and self.port.peek(vmc + id_off) == class_id:
                return self.port.peek(vmc + super_off)
        return -1

    def layout_for_desc(self, desc: str) -> Layout:
        if is_array(desc):
            return self.loader.array_layout(desc)
        return self.loader.ensure_layout(class_name(desc)).layout


class RemoteObject:
    """A proxy for one object in the remote VM."""

    __slots__ = ("resolver", "addr", "layout")

    def __init__(self, resolver: RemoteResolver, addr: int, layout: Layout | None = None):
        if addr == 0:
            raise VMError("remote null has no proxy — use 0/None")
        self.resolver = resolver
        self.addr = addr
        self.layout = layout if layout is not None else resolver.layout_for_remote(addr)

    # -- scalars and references ----------------------------------------------

    def _wrap(self, desc: str, word: int):
        if not is_reference(desc):
            return word
        if word == 0:
            return None
        return RemoteObject(self.resolver, word)

    def field(self, name: str):
        """Read an instance field; returns int, None, or RemoteObject."""
        slot = self.layout.field_by_name.get(name)
        if slot is None:
            raise VMError(f"no field {name!r} in {self.layout.name}")
        word = self.resolver.port.peek(self.addr + slot.offset)
        return self._wrap(slot.desc, word)

    # -- arrays ---------------------------------------------------------------

    def _require_array(self) -> str:
        if not self.layout.is_array:
            raise VMError(f"{self.layout.name} is not an array")
        assert self.layout.elem_desc is not None
        return self.layout.elem_desc

    @property
    def length(self) -> int:
        self._require_array()
        return self.resolver.port.peek(self.addr + HEADER_AUX)

    def elem(self, index: int):
        elem_desc = self._require_array()
        n = self.length
        if not (0 <= index < n):
            raise VMError(f"remote array index {index} out of range {n}")
        word = self.resolver.port.peek(self.addr + HEADER_WORDS + index)
        return self._wrap(elem_desc, word)

    def clone_primitive_array(self) -> list[int]:
        """Copy a remote ``[I`` wholesale (§3.3: natives on the tool VM get
        clones of remote primitive arrays)."""
        elem_desc = self._require_array()
        if is_reference(elem_desc):
            raise VMError("clone_primitive_array on a reference array")
        n = self.length
        return self.resolver.port.peek_range(self.addr + HEADER_WORDS, n)

    # -- conveniences -----------------------------------------------------------

    def as_string(self) -> str:
        if self.layout.name != "String":
            raise VMError(f"{self.layout.name} is not a String")
        return self.resolver.read_remote_string(self.addr)

    @property
    def class_name(self) -> str:
        return self.layout.name

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RemoteObject {self.layout.name}@{self.addr}>"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RemoteObject)
            and other.addr == self.addr
            and other.resolver is self.resolver
        )

    def __hash__(self) -> int:
        return hash((id(self.resolver), self.addr))
