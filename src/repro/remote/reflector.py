"""Host-side remote reflection facade (what the debugger core uses).

Everything here reads the application VM purely through the
:class:`~repro.remote.ptrace.DebugPort`; the structure (dictionary,
methods, classes, threads, shadow stacks) mirrors what the guest's own
reflection methods would compute — and the :class:`ToolInterpreter` path
actually computes it *with* those guest methods (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.remote.mapping import MappedMethods, default_mappings, remote_thread_table
from repro.remote.ptrace import DebugPort
from repro.remote.remote_object import RemoteObject, RemoteResolver
from repro.vm.errors import VMError
from repro.vm.monitors import unpack_lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine


@dataclass
class RemoteFrameInfo:
    """One remote stack frame, decoded from a shadow call stack."""

    method_id: int
    method_name: str
    class_name: str
    bci: int
    line: int


@dataclass
class RemoteThreadInfo:
    tid: int
    state: int
    frames: list[RemoteFrameInfo]


class RemoteReflector:
    """Queries over a remote VM, via raw memory reads only."""

    def __init__(self, port: DebugPort, tool_vm: "VirtualMachine", mappings: MappedMethods | None = None):
        self.port = port
        self.tool_vm = tool_vm
        self.resolver = RemoteResolver(port, tool_vm.loader)
        self.mappings = mappings if mappings is not None else default_mappings()

    # ------------------------------------------------------------------
    # dictionary / methods / classes

    def methods(self) -> RemoteObject:
        fn = self.mappings.lookup("VM_Dictionary.getMethods()[LVM_Method;")
        assert fn is not None
        result = fn(self.resolver)
        if not isinstance(result, RemoteObject):
            raise VMError("remote dictionary has no methods array")
        return result

    def method(self, method_id: int) -> RemoteObject:
        mtable = self.methods()
        obj = mtable.elem(method_id)
        if not isinstance(obj, RemoteObject):
            raise VMError(f"no remote method with id {method_id}")
        return obj

    def method_count(self) -> int:
        fn = self.mappings.lookup("VM_Dictionary.getMethodCount()I")
        assert fn is not None
        count = fn(self.resolver)
        assert isinstance(count, int)
        return count

    def method_name(self, method_id: int) -> str:
        vmm = self.method(method_id)
        name = vmm.field("name")
        declaring = vmm.field("declaring")
        assert isinstance(name, RemoteObject) and isinstance(declaring, RemoteObject)
        cls = declaring.field("name")
        assert isinstance(cls, RemoteObject)
        return f"{cls.as_string()}.{name.as_string()}"

    def line_number_of(self, method_number: int, offset: int) -> int:
        """Figure 3's ``Debugger.lineNumberOf``, host-side flavour:
        select ``mtable[methodNumber]`` and read its line table."""
        vmm = self.method(method_number)
        table = vmm.field("lineTable")
        if table is None:
            return 0
        assert isinstance(table, RemoteObject)
        if not (0 <= offset < table.length):
            return 0
        value = table.elem(offset)
        assert isinstance(value, int)
        return value

    def classes(self) -> RemoteObject:
        fn = self.mappings.lookup("VM_Dictionary.getClasses()[LVM_Class;")
        assert fn is not None
        result = fn(self.resolver)
        if not isinstance(result, RemoteObject):
            raise VMError("remote dictionary has no classes array")
        return result

    def class_names(self) -> list[str]:
        arr = self.classes()
        names = []
        for i in range(arr.length):
            vmc = arr.elem(i)
            if isinstance(vmc, RemoteObject):
                name = vmc.field("name")
                assert isinstance(name, RemoteObject)
                names.append(name.as_string())
        return names

    # ------------------------------------------------------------------
    # threads and stacks

    def threads(self) -> list[RemoteThreadInfo]:
        table = remote_thread_table(self.resolver)
        infos = []
        for i in range(table.length):
            t = table.elem(i)
            if isinstance(t, RemoteObject):
                infos.append(self.thread_info(t))
        return infos

    def thread_info(self, thread: RemoteObject) -> RemoteThreadInfo:
        tid = thread.field("tid")
        state = thread.field("state")
        assert isinstance(tid, int) and isinstance(state, int)
        return RemoteThreadInfo(tid=tid, state=state, frames=self.stack_trace(thread))

    def stack_trace(self, thread: RemoteObject) -> list[RemoteFrameInfo]:
        """Decode the thread's heap-resident shadow call stack."""
        shadow = thread.field("shadow")
        if shadow is None:
            return []
        assert isinstance(shadow, RemoteObject)
        depth = shadow.elem(0)
        assert isinstance(depth, int)
        frames = []
        for level in range(depth):
            mid = shadow.elem(1 + 2 * level)
            bci = shadow.elem(2 + 2 * level)
            assert isinstance(mid, int) and isinstance(bci, int)
            qual = self.method_name(mid)
            cls, _, name = qual.rpartition(".")
            frames.append(
                RemoteFrameInfo(
                    method_id=mid,
                    method_name=name,
                    class_name=cls,
                    bci=bci,
                    line=self.line_number_of(mid, bci),
                )
            )
        frames.reverse()  # innermost first
        return frames

    # ------------------------------------------------------------------
    # objects

    def object_at(self, addr: int) -> RemoteObject:
        return RemoteObject(self.resolver, addr)

    def lock_state(self, obj: RemoteObject) -> tuple[int | None, int]:
        """(owner tid, recursion) straight from the remote header word."""
        from repro.vm.layout import HEADER_STATUS

        return unpack_lock(self.port.peek(obj.addr + HEADER_STATUS))

    def statics_of(self, class_name: str) -> RemoteObject | None:
        arr = self.classes()
        for i in range(arr.length):
            vmc = arr.elem(i)
            if isinstance(vmc, RemoteObject):
                name = vmc.field("name")
                assert isinstance(name, RemoteObject)
                if name.as_string() == class_name:
                    statics = vmc.field("statics")
                    return statics if isinstance(statics, RemoteObject) else None
        raise VMError(f"no remote class {class_name}")
