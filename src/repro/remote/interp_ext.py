"""The tool VM's interpreter, extended for remote reflection (§3.2, §3.4).

The paper extends "a standard Java interpreter" so that

* ``invokestatic`` / ``invokevirtual`` are checked against the mapped-
  method list; mapped invocations are intercepted and return a remote
  object (or a primitive fetched from the remote VM) instead of executing;
* every bytecode that operates on a reference (23 of them in Java) is
  extended to accept a remote object: primitive results are fetched from
  the remote address space and pushed; reference results are pushed as new
  remote objects.

This module is exactly that: a direct bytecode interpreter (the tool VM
runs bytecode, while the application VM runs compiled code — Figure 4)
whose reference ops dispatch on whether the value at hand is a local heap
address (plain int) or a :class:`RemoteObject` proxy.  Writes through
remote references are refused — the debugger only queries (§3.2).

The interpreter allocates in the *tool* VM's heap (local ``new``,
``StringBuilder`` use, array clones for natives), and registers its
frames as GC roots with the tool VM so local collections stay safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.remote.mapping import MappedMethods
from repro.remote.remote_object import RemoteObject, RemoteResolver
from repro.vm import words
from repro.vm.bytecode import Op
from repro.vm.errors import VMError, VMTrap
from repro.vm.refmaps import field_ref

if TYPE_CHECKING:  # pragma: no cover
    from repro.remote.ptrace import DebugPort
    from repro.vm.loader import Loader, RuntimeMethod
    from repro.vm.machine import VirtualMachine

_MAX_STEPS = 5_000_000


class _ToolFrame:
    __slots__ = ("method", "bci", "locals", "stack")

    def __init__(self, method: "RuntimeMethod", args: list):
        self.method = method
        self.bci = 0
        nlocals = method.mdef.max_locals or method.mdef.compute_max_locals()
        self.locals: list = list(args) + [0] * (nlocals - len(args))
        self.stack: list = []


class ToolInterpreter:
    """Interprets tool-VM bytecode with remote-object support."""

    def __init__(
        self,
        tool_vm: "VirtualMachine",
        port: "DebugPort",
        mappings: MappedMethods | None = None,
    ):
        self.vm = tool_vm
        self.port = port
        self.resolver = RemoteResolver(port, tool_vm.loader)
        self.mappings = mappings if mappings is not None else MappedMethods()
        self.frames: list[_ToolFrame] = []
        self.steps = 0
        self.remote_fetches = 0

    # ------------------------------------------------------------------
    # public entry

    def call(self, method_ref: str, args: list | None = None):
        """Interpret ``Class.name(sig)ret`` with *args*; returns the result
        (int, 0-as-null, local address, or RemoteObject)."""
        loader: Loader = self.vm.loader
        rm = loader.resolve_method_any(method_ref)
        loader.load(rm.owner.name)
        base_depth = len(self.frames)
        self.vm.extra_root_visitors.append(self._visit_roots)
        try:
            return self._run(rm, list(args or []), base_depth)
        finally:
            self.vm.extra_root_visitors.remove(self._visit_roots)
            del self.frames[base_depth:]

    # ------------------------------------------------------------------
    # GC cooperation (tool-VM collections while interpreting)

    def _visit_roots(self, fwd: Callable[[int], int]) -> None:
        for frame in self.frames:
            maps = frame.method.maps
            if maps is None:
                continue
            lrefs, srefs = maps.ref_map(frame.bci)
            for i in lrefs:
                v = frame.locals[i]
                if isinstance(v, int) and v:
                    frame.locals[i] = fwd(v)
            depth = len(frame.stack)
            for i in srefs:
                if i < depth:
                    v = frame.stack[i]
                    if isinstance(v, int) and v:
                        frame.stack[i] = fwd(v)

    # ------------------------------------------------------------------
    # core loop

    def _run(self, rm: "RuntimeMethod", args: list, base_depth: int):
        self._push_frame(rm, args)
        result: object = None
        while len(self.frames) > base_depth:
            frame = self.frames[-1]
            result = self._step(frame)
        return result

    def _push_frame(self, rm: "RuntimeMethod", args: list) -> None:
        if rm.native:
            raise VMError(f"tool interpreter cannot enter native {rm.qualname}")
        if rm.maps is None:
            self.vm.loader.load(rm.owner.name)
        self.frames.append(_ToolFrame(rm, args))

    def _invoke(self, rm: "RuntimeMethod", args: list):
        """Dispatch a (non-mapped) invocation: native or bytecode."""
        if rm.native:
            value = self._call_native(rm, args)
            if rm.mdef.signature.ret != "V":
                self.frames[-1].stack.append(value if value is not None else 0)
            return
        self._push_frame(rm, args)

    def _call_native(self, rm: "RuntimeMethod", args: list):
        """Tool-VM natives get remote primitives cloned locally (§3.3)."""
        local_args: list[int] = []
        depth = len(self.vm.loader.temp_roots)
        for a in args:
            if isinstance(a, RemoteObject):
                if a.layout.is_array and a.layout.elem_desc == "I":
                    values = a.clone_primitive_array()
                    clone = self.vm.om.new_array("[I", len(values))
                    self.vm.loader._tr_push(clone)
                    for i, v in enumerate(values):
                        self.vm.om.array_put(clone, i, v)
                    local_args.append(clone)
                elif a.layout.name == "String":
                    s = self.vm.loader.make_string(a.as_string())
                    self.vm.loader._tr_push(s)
                    local_args.append(s)
                else:
                    raise VMError(
                        f"cannot pass remote {a.layout.name} to native {rm.qualname}"
                    )
            else:
                local_args.append(a)
        try:
            raw = self.vm.call_native(self.vm.scheduler.current or _FakeThread(), rm, local_args)
        finally:
            self.vm.loader._tr_reset(depth)
        from repro.vm.native import BLOCK, NativeResult

        if raw is BLOCK:
            raise VMError(f"native {rm.qualname} blocked in tool interpreter")
        if isinstance(raw, NativeResult):
            if raw.upcalls:
                raise VMError("tool interpreter does not support upcalls")
            if raw.string_value is not None:
                return self.vm.loader.make_string(raw.string_value)
            return raw.value
        return raw

    # ------------------------------------------------------------------
    # remote helpers

    def _remote_field(self, obj: RemoteObject, ref) -> object:
        name = field_ref(ref)[0].split(".", 1)[1]
        self.remote_fetches += 1
        return obj.field(name)

    def _is_null(self, v) -> bool:
        return v == 0 or v is None

    def _refs_equal(self, a, b) -> bool:
        if self._is_null(a) and self._is_null(b):
            return True
        if isinstance(a, RemoteObject) or isinstance(b, RemoteObject):
            return (
                isinstance(a, RemoteObject)
                and isinstance(b, RemoteObject)
                and a.addr == b.addr
            )
        return a == b

    # ------------------------------------------------------------------

    def _step(self, frame: _ToolFrame):  # noqa: C901 - the dispatch
        self.steps += 1
        if self.steps > _MAX_STEPS:
            raise VMError("tool interpreter step budget exceeded")
        vm = self.vm
        om = vm.om
        loader = vm.loader
        code = frame.method.mdef.code
        instr = code[frame.bci]
        op = instr.op
        stack = frame.stack
        next_bci = frame.bci + 1

        if op is Op.NOP:
            pass
        elif op is Op.ICONST:
            stack.append(instr.arg)
        elif op is Op.LDC:
            rc = frame.method.owner
            stack.append(om.array_get(rc.constants_addr, instr.arg))
        elif op is Op.ACONST_NULL:
            stack.append(0)
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.POP:
            stack.pop()
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op in (Op.ILOAD, Op.ALOAD):
            stack.append(frame.locals[instr.arg])
        elif op in (Op.ISTORE, Op.ASTORE):
            frame.locals[instr.arg] = stack.pop()
        elif op is Op.IINC:
            slot, delta = instr.arg
            frame.locals[slot] = words.to_i32(frame.locals[slot] + delta)
        elif op is Op.IADD:
            b = stack.pop()
            stack[-1] = words.iadd(stack[-1], b)
        elif op is Op.ISUB:
            b = stack.pop()
            stack[-1] = words.isub(stack[-1], b)
        elif op is Op.IMUL:
            b = stack.pop()
            stack[-1] = words.imul(stack[-1], b)
        elif op is Op.IDIV:
            b = stack.pop()
            try:
                stack[-1] = words.idiv(stack[-1], b)
            except ZeroDivisionError:
                raise VMTrap("ArithmeticDivByZero") from None
        elif op is Op.IREM:
            b = stack.pop()
            try:
                stack[-1] = words.irem(stack[-1], b)
            except ZeroDivisionError:
                raise VMTrap("ArithmeticDivByZero") from None
        elif op is Op.INEG:
            stack[-1] = words.ineg(stack[-1])
        elif op is Op.ISHL:
            b = stack.pop()
            stack[-1] = words.ishl(stack[-1], b)
        elif op is Op.ISHR:
            b = stack.pop()
            stack[-1] = words.ishr(stack[-1], b)
        elif op is Op.IUSHR:
            b = stack.pop()
            stack[-1] = words.iushr(stack[-1], b)
        elif op is Op.IAND:
            b = stack.pop()
            stack[-1] = words.iand(stack[-1], b)
        elif op is Op.IOR:
            b = stack.pop()
            stack[-1] = words.ior(stack[-1], b)
        elif op is Op.IXOR:
            b = stack.pop()
            stack[-1] = words.ixor(stack[-1], b)

        elif op is Op.GOTO:
            next_bci = instr.arg
        elif op is Op.IFEQ:
            next_bci = instr.arg if stack.pop() == 0 else next_bci
        elif op is Op.IFNE:
            next_bci = instr.arg if stack.pop() != 0 else next_bci
        elif op is Op.IFLT:
            next_bci = instr.arg if stack.pop() < 0 else next_bci
        elif op is Op.IFLE:
            next_bci = instr.arg if stack.pop() <= 0 else next_bci
        elif op is Op.IFGT:
            next_bci = instr.arg if stack.pop() > 0 else next_bci
        elif op is Op.IFGE:
            next_bci = instr.arg if stack.pop() >= 0 else next_bci
        elif op is Op.IF_ICMPEQ:
            b, a = stack.pop(), stack.pop()
            next_bci = instr.arg if a == b else next_bci
        elif op is Op.IF_ICMPNE:
            b, a = stack.pop(), stack.pop()
            next_bci = instr.arg if a != b else next_bci
        elif op is Op.IF_ICMPLT:
            b, a = stack.pop(), stack.pop()
            next_bci = instr.arg if a < b else next_bci
        elif op is Op.IF_ICMPLE:
            b, a = stack.pop(), stack.pop()
            next_bci = instr.arg if a <= b else next_bci
        elif op is Op.IF_ICMPGT:
            b, a = stack.pop(), stack.pop()
            next_bci = instr.arg if a > b else next_bci
        elif op is Op.IF_ICMPGE:
            b, a = stack.pop(), stack.pop()
            next_bci = instr.arg if a >= b else next_bci
        elif op is Op.IF_ACMPEQ:
            b, a = stack.pop(), stack.pop()
            next_bci = instr.arg if self._refs_equal(a, b) else next_bci
        elif op is Op.IF_ACMPNE:
            b, a = stack.pop(), stack.pop()
            next_bci = instr.arg if not self._refs_equal(a, b) else next_bci
        elif op is Op.IFNULL:
            next_bci = instr.arg if self._is_null(stack.pop()) else next_bci
        elif op is Op.IFNONNULL:
            next_bci = instr.arg if not self._is_null(stack.pop()) else next_bci

        elif op is Op.NEW:
            frame.bci = frame.bci  # bci is current: safe point for _visit_roots
            rc = loader.ensure_layout(str(instr.arg))
            loader.load(rc.name)
            stack.append(om.new_object(rc.layout))
        elif op is Op.GETFIELD:
            obj = stack.pop()
            if self._is_null(obj):
                raise VMTrap("NullPointer", "getfield on null")
            if isinstance(obj, RemoteObject):
                stack.append(self._remote_field(obj, instr.arg))
            else:
                ref, _ = field_ref(instr.arg)
                slot = loader.resolve_instance_field(ref)
                stack.append(om.get_field(obj, slot.offset))
        elif op is Op.PUTFIELD:
            value = stack.pop()
            obj = stack.pop()
            if isinstance(obj, RemoteObject) or isinstance(value, RemoteObject):
                raise VMError("remote reflection is read-only: putfield refused")
            ref, _ = field_ref(instr.arg)
            slot = loader.resolve_instance_field(ref)
            om.put_field(obj, slot.offset, value)
        elif op is Op.GETSTATIC:
            ref, _ = field_ref(instr.arg)
            holder_rc, slot = loader.resolve_static_field(ref)
            loader.load(holder_rc.name)
            stack.append(om.get_field(holder_rc.statics_addr, slot.offset))
        elif op is Op.PUTSTATIC:
            value = stack.pop()
            if isinstance(value, RemoteObject):
                raise VMError("remote reflection is read-only: putstatic refused")
            ref, _ = field_ref(instr.arg)
            holder_rc, slot = loader.resolve_static_field(ref)
            om.put_field(holder_rc.statics_addr, slot.offset, value)
        elif op is Op.NEWARRAY:
            length = stack.pop()
            stack.append(om.new_array("[I", length))
        elif op is Op.ANEWARRAY:
            length = stack.pop()
            stack.append(om.new_array("[" + str(instr.arg), length))
        elif op in (Op.IALOAD, Op.AALOAD):
            index = stack.pop()
            arr = stack.pop()
            if self._is_null(arr):
                raise VMTrap("NullPointer", "array load on null")
            if isinstance(arr, RemoteObject):
                self.remote_fetches += 1
                stack.append(arr.elem(index))
            else:
                stack.append(om.array_get(arr, index))
        elif op in (Op.IASTORE, Op.AASTORE):
            value = stack.pop()
            index = stack.pop()
            arr = stack.pop()
            if isinstance(arr, RemoteObject) or isinstance(value, RemoteObject):
                raise VMError("remote reflection is read-only: array store refused")
            om.array_put(arr, index, value)
        elif op is Op.ARRAYLENGTH:
            arr = stack.pop()
            if self._is_null(arr):
                raise VMTrap("NullPointer", "arraylength on null")
            if isinstance(arr, RemoteObject):
                stack.append(arr.length)
            else:
                stack.append(om.array_length(arr))
        elif op is Op.INSTANCEOF:
            obj = stack.pop()
            target = loader.ensure_layout(str(instr.arg))
            stack.append(1 if self._instance_of(obj, target) else 0)
        elif op is Op.CHECKCAST:
            obj = stack[-1]
            target = loader.ensure_layout(str(instr.arg))
            if not self._is_null(obj) and not self._instance_of(obj, target):
                raise VMTrap("ClassCast", f"not a {target.name}")

        elif op in (Op.INVOKESTATIC, Op.INVOKEVIRTUAL):
            ref = str(instr.arg)
            rm = loader.resolve_method_any(ref)
            # §3.4: check the target against the mapping list first
            if rm.static and rm.qualname in self.mappings:
                fn = self.mappings.lookup(rm.qualname)
                assert fn is not None
                for _ in range(rm.mdef.signature.nargs):
                    stack.pop()
                result = fn(self.resolver)
                if rm.mdef.signature.ret != "V":
                    stack.append(0 if result is None else result)
            else:
                nargs = rm.mdef.signature.nargs + (0 if rm.static else 1)
                args = stack[-nargs:] if nargs else []
                if nargs:
                    del stack[-nargs:]
                if not rm.static:
                    receiver = args[0]
                    if self._is_null(receiver):
                        raise VMTrap("NullPointer", f"invokevirtual {ref} on null")
                    if isinstance(receiver, RemoteObject):
                        # virtual dispatch on the *remote* object's class,
                        # resolved through the tool VM's identical classes
                        rc = loader.classes.get(receiver.layout.name)
                        if rc is None:
                            raise VMError(
                                f"tool VM lacks class {receiver.layout.name}"
                            )
                        rm = rc.vtable.get(rm.key) or rm
                    else:
                        layout = om.layout_of(receiver)
                        rm = loader.vtable_lookup(layout.class_id, rm.key)
                frame.bci = next_bci - 1  # safe point while callee may allocate
                self._invoke(rm, args)
                frame.bci = next_bci
                return None
        elif op is Op.RETURN:
            self.frames.pop()
            return None
        elif op in (Op.IRETURN, Op.ARETURN):
            value = stack.pop()
            self.frames.pop()
            if self.frames:
                self.frames[-1].stack.append(value)
                return None
            return value
        elif op in (Op.MONITORENTER, Op.MONITOREXIT):
            obj = stack.pop()
            if isinstance(obj, RemoteObject):
                raise VMError("cannot lock a remote object")
            # single-threaded tool interpretation: monitors are no-ops
        else:  # pragma: no cover
            raise VMError(f"tool interpreter: unhandled opcode {op.name}")

        frame.bci = next_bci
        return None

    def _instance_of(self, obj, target_rc) -> bool:
        if self._is_null(obj):
            return False
        if isinstance(obj, RemoteObject):
            if obj.layout.is_array:
                return target_rc.name == "Object"
            walk = self.vm.loader.classes.get(obj.layout.name)
            while walk is not None:
                if walk is target_rc:
                    return True
                walk = walk.super_rc
            return False
        return self.vm.is_instance(obj, target_rc)


class _FakeThread:
    """Stands in for a green thread when tool natives run host-side."""

    tid = -1
    guest_addr = 0
