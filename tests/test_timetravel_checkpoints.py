"""Seek equivalence: checkpointed time travel lands on identical state.

The property under test: for any target T, a checkpoint-accelerated
``goto_cycles(T)`` observes the *same* TimePoint and the same machine
digest as the from-zero path — checkpoints change seek cost, never the
state seen.  This holds even when snapshots are corrupted away, because
the fallback ladder bottoms out at replay-from-zero.
"""

import pytest

from repro.api import record
from repro.core.checkpoint import machine_digest
from repro.debugger import Debugger, ReplaySession
from repro.debugger.timetravel import TimeTravelSession
from repro.vm import SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank

CFG = VMConfig(semispace_words=60_000)
EVERY = 600


@pytest.fixture(scope="module")
def recorded():
    return record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))


def _sampled_targets(end):
    """Backward-seek targets spread over the run (descending, so every
    seek after the first is a rewind)."""
    return [
        end * 9 // 10,
        end * 3 // 5,
        end * 2 // 5,
        EVERY + EVERY // 2,  # just past the first checkpoint
        EVERY // 3,  # before any checkpoint: must come from zero
    ]


class TestSeekEquivalence:
    def test_checkpointed_seeks_match_from_zero(self, recorded):
        plain = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        fast = TimeTravelSession(
            racy_bank(), recorded.trace, config=CFG, checkpoint_every=EVERY
        )
        end = recorded.result.cycles
        fast.goto_cycles(end + 1)  # travel to the end, capturing snapshots
        assert fast._snapshots, "no checkpoints captured while travelling"
        for target in _sampled_targets(end):
            slow_point = plain.goto_cycles(target)
            fast_point = fast.goto_cycles(target)
            assert fast_point == slow_point
            assert machine_digest(fast.session.vm) == machine_digest(
                plain.session.vm
            )
        assert fast.restores > 0, "no seek was checkpoint-accelerated"

    def test_corrupt_snapshot_falls_back_to_identical_state(self, recorded):
        """Tampering with a captured snapshot must not change where a
        seek lands — the damaged rung drops out of the ladder."""
        plain = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        fast = TimeTravelSession(
            racy_bank(), recorded.trace, config=CFG, checkpoint_every=EVERY
        )
        end = recorded.result.cycles
        fast.goto_cycles(end + 1)
        target = end * 3 // 4
        # tamper with the snapshot the seek would restore (newest < target)
        victim_cycles = max(c for c in fast._snapshots if c < target)
        victim = fast._snapshots[victim_cycles]
        victim.words[len(victim.words) // 2] ^= 1
        victim._words_blob = None  # force re-encode of the tampered words
        fast_point = fast.goto_cycles(target)
        slow_point = plain.goto_cycles(target)
        assert fast_point == slow_point
        assert machine_digest(fast.session.vm) == machine_digest(plain.session.vm)
        # the tampered snapshot was evicted from the ladder (the boundary
        # may hold a *fresh* snapshot re-captured by the fallback replay)
        assert fast._snapshots.get(victim_cycles) is not victim

    def test_seeks_are_o_interval_not_o_trace(self, recorded):
        """Observability check: a late backward seek restores a nearby
        checkpoint instead of replaying the whole prefix."""
        fast = TimeTravelSession(
            racy_bank(), recorded.trace, config=CFG, checkpoint_every=EVERY
        )
        end = recorded.result.cycles
        fast.goto_cycles(end + 1)
        before = fast.restores
        fast.goto_cycles(end * 9 // 10)
        assert fast.restores == before + 1
        # the restored session started at the nearest earlier boundary,
        # not at zero: it replayed at most ~one interval of cycles
        assert fast.now >= end * 9 // 10


class TestDebuggerJump:
    def test_jump_forward_and_back(self, recorded):
        session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        dbg = Debugger(session)
        end = recorded.result.cycles
        out = dbg.jump(end * 3 // 5)
        assert out["status"] == "timepoint"
        assert out["cycles"] >= end * 3 // 5
        back = dbg.jump(end // 5)
        assert back["cycles"] < out["cycles"]
        assert back["cycles"] >= end // 5
        # subsequent commands operate at the new position
        assert dbg.info()["cycles"] == back["cycles"]
        done = dbg.finish()
        assert done["status"] == "done"
        assert done["output"] == recorded.result.output_text

    def test_jump_bad_target_is_an_error(self, recorded):
        from repro.vm.errors import VMError

        dbg = Debugger(ReplaySession(racy_bank(), recorded.trace, config=CFG))
        with pytest.raises(VMError):
            dbg.jump(-1)
