"""Monitors: mutual exclusion, wait/notify, timed wait, interrupt."""

import pytest

from repro.vm import FixedTimer, SeededJitterTimer, VirtualMachine, assemble
from repro.vm.errors import VMTrap
from repro.vm.monitors import pack_lock, unpack_lock
from tests.conftest import TEST_CONFIG, run_source


class TestLockWord:
    def test_pack_unpack_roundtrip(self):
        for tid, rec in [(0, 1), (5, 3), (200, 255)]:
            assert unpack_lock(pack_lock(tid, rec)) == (tid, rec)

    def test_free_is_zero(self):
        assert pack_lock(None, 0) == 0
        assert unpack_lock(0) == (None, 0)


class TestMutualExclusion:
    def test_synced_counter_exact(self):
        src = """.class W
.super Thread
.method run ()V
    iconst 0
    istore 1
loop:
    iload 1
    iconst 50
    if_icmpge done
    getstatic Main.lock LObject;
    monitorenter
    getstatic Main.n I
    iconst 1
    iadd
    putstatic Main.n I
    getstatic Main.lock LObject;
    monitorexit
    iinc 1 1
    goto loop
done:
    return
.end
.class Main
.field static n I
.field static lock LObject;
.method static main ()V
    new Object
    putstatic Main.lock LObject;
    new W
    astore 0
    new W
    astore 1
    aload 0
    invokestatic Thread.start(LThread;)V
    aload 1
    invokestatic Thread.start(LThread;)V
    aload 0
    invokestatic Thread.join(LThread;)V
    aload 1
    invokestatic Thread.join(LThread;)V
    getstatic Main.n I
    invokestatic System.printInt(I)V
    return
.end
"""
        for seed in range(4):
            result = run_source(src, timer=SeededJitterTimer(seed, 20, 80))
            assert result.output_text == "100"

    def test_recursive_lock(self):
        src = """.class Main
.field static o LObject;
.method static main ()V
    new Object
    putstatic Main.o LObject;
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.o LObject;
    monitorexit
    getstatic Main.o LObject;
    monitorexit
    ldc "ok"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "ok"

    def test_exit_without_owner_traps(self):
        src = """.class Main
.method static main ()V
    new Object
    monitorexit
    return
.end
"""
        assert run_source(src).traps[0][1] == "IllegalMonitorState"

    def test_lock_word_visible_in_header(self):
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(assemble(
            """.class Main
.field static o LObject;
.method static main ()V
    new Object
    putstatic Main.o LObject;
    getstatic Main.o LObject;
    monitorenter
    return
.end
"""
        ))
        vm.run()
        rc, slot = vm.loader.resolve_static_field("Main.o")
        addr = vm.om.get_field(rc.statics_addr, slot.offset)
        owner, rec = unpack_lock(vm.om.lock_word(addr))
        assert owner == 0 and rec == 1  # main never released it


class TestWaitNotify:
    HANDSHAKE = """.class Waiter
.super Thread
.method run ()V
    getstatic Main.o LObject;
    monitorenter
    iconst 1
    putstatic Main.ready I
    getstatic Main.o LObject;
    invokestatic System.wait(LObject;)V
    ldc "woken "
    invokestatic System.print(LString;)V
    getstatic Main.o LObject;
    monitorexit
    return
.end
.class Main
.field static o LObject;
.field static ready I
.method static main ()V
    new Object
    putstatic Main.o LObject;
    new Waiter
    astore 0
    aload 0
    invokestatic Thread.start(LThread;)V
spin:
    getstatic Main.ready I
    ifeq spinmore
    goto go
spinmore:
    invokestatic Thread.yield()V
    goto spin
go:
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.o LObject;
    invokestatic System.notify(LObject;)V
    getstatic Main.o LObject;
    monitorexit
    aload 0
    invokestatic Thread.join(LThread;)V
    ldc "done"
    invokestatic System.print(LString;)V
    return
.end
"""

    def test_wait_notify_handshake(self):
        assert run_source(self.HANDSHAKE, timer=FixedTimer(5000)).output_text == "woken done"

    def test_notify_without_ownership_traps(self):
        src = """.class Main
.method static main ()V
    new Object
    invokestatic System.notify(LObject;)V
    return
.end
"""
        assert run_source(src).traps[0][1] == "IllegalMonitorState"

    def test_wait_without_ownership_traps(self):
        src = """.class Main
.method static main ()V
    new Object
    invokestatic System.wait(LObject;)V
    return
.end
"""
        assert run_source(src).traps[0][1] == "IllegalMonitorState"

    def test_notify_with_no_waiters_is_noop(self):
        src = """.class Main
.field static o LObject;
.method static main ()V
    new Object
    putstatic Main.o LObject;
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.o LObject;
    invokestatic System.notify(LObject;)V
    getstatic Main.o LObject;
    invokestatic System.notifyAll(LObject;)V
    getstatic Main.o LObject;
    monitorexit
    ldc "ok"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "ok"

    def test_notify_all_wakes_everyone(self):
        src = """.class W
.super Thread
.method run ()V
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.waiting I
    iconst 1
    iadd
    putstatic Main.waiting I
    getstatic Main.o LObject;
    invokestatic System.wait(LObject;)V
    getstatic Main.woken I
    iconst 1
    iadd
    putstatic Main.woken I
    getstatic Main.o LObject;
    monitorexit
    return
.end
.class Main
.field static o LObject;
.field static waiting I
.field static woken I
.field static ws [LThread;
.method static main ()V
    new Object
    putstatic Main.o LObject;
    iconst 3
    anewarray LThread;
    putstatic Main.ws [LThread;
    iconst 0
    istore 0
mk:
    iload 0
    iconst 3
    if_icmpge started
    getstatic Main.ws [LThread;
    iload 0
    new W
    aastore
    getstatic Main.ws [LThread;
    iload 0
    aaload
    invokestatic Thread.start(LThread;)V
    iinc 0 1
    goto mk
started:
    getstatic Main.waiting I
    iconst 3
    if_icmpeq wake
    invokestatic Thread.yield()V
    goto started
wake:
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.o LObject;
    invokestatic System.notifyAll(LObject;)V
    getstatic Main.o LObject;
    monitorexit
    iconst 0
    istore 0
joinloop:
    iload 0
    iconst 3
    if_icmpge report
    getstatic Main.ws [LThread;
    iload 0
    aaload
    invokestatic Thread.join(LThread;)V
    iinc 0 1
    goto joinloop
report:
    getstatic Main.woken I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src, timer=FixedTimer(5000)).output_text == "3"


class TestTimedWait:
    def test_timed_wait_expires(self):
        src = """.class Main
.field static o LObject;
.method static main ()V
    new Object
    putstatic Main.o LObject;
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.o LObject;
    iconst 30
    invokestatic System.timedWait(LObject;I)V
    getstatic Main.o LObject;
    monitorexit
    ldc "expired"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "expired"

    def test_notify_beats_timeout(self):
        src = """.class W
.super Thread
.method run ()V
    getstatic Main.o LObject;
    monitorenter
    iconst 1
    putstatic Main.ready I
    getstatic Main.o LObject;
    iconst 100000
    invokestatic System.timedWait(LObject;I)V
    ldc "notified"
    invokestatic System.print(LString;)V
    getstatic Main.o LObject;
    monitorexit
    return
.end
.class Main
.field static o LObject;
.field static ready I
.method static main ()V
    new Object
    putstatic Main.o LObject;
    new W
    astore 0
    aload 0
    invokestatic Thread.start(LThread;)V
spin:
    getstatic Main.ready I
    ifne go
    invokestatic Thread.yield()V
    goto spin
go:
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.o LObject;
    invokestatic System.notify(LObject;)V
    getstatic Main.o LObject;
    monitorexit
    aload 0
    invokestatic Thread.join(LThread;)V
    return
.end
"""
        assert run_source(src, timer=FixedTimer(5000)).output_text == "notified"


class TestInterrupt:
    def test_interrupt_wakes_waiter_and_sets_flag(self):
        src = """.class W
.super Thread
.method run ()V
    getstatic Main.o LObject;
    monitorenter
    iconst 1
    putstatic Main.ready I
    getstatic Main.o LObject;
    invokestatic System.wait(LObject;)V
    getstatic Main.o LObject;
    monitorexit
    invokestatic System.interrupted()I
    invokestatic System.printInt(I)V
    invokestatic System.interrupted()I
    invokestatic System.printInt(I)V
    return
.end
.class Main
.field static o LObject;
.field static ready I
.method static main ()V
    new Object
    putstatic Main.o LObject;
    new W
    astore 0
    aload 0
    invokestatic Thread.start(LThread;)V
spin:
    getstatic Main.ready I
    ifne go
    invokestatic Thread.yield()V
    goto spin
go:
    aload 0
    invokestatic System.interrupt(LThread;)I
    invokestatic System.printInt(I)V
    aload 0
    invokestatic Thread.join(LThread;)V
    return
.end
"""
        # interrupt() returns 1 (woke a waiter); interrupted() reads then clears
        assert run_source(src, timer=FixedTimer(5000)).output_text == "110"

    def test_interrupt_wakes_sleeper(self):
        src = """.class W
.super Thread
.method run ()V
    iconst 1
    putstatic Main.ready I
    iconst 1000000
    invokestatic Thread.sleep(I)V
    ldc "awake"
    invokestatic System.print(LString;)V
    return
.end
.class Main
.field static ready I
.method static main ()V
    new W
    astore 0
    aload 0
    invokestatic Thread.start(LThread;)V
spin:
    getstatic Main.ready I
    ifne go
    invokestatic Thread.yield()V
    goto spin
go:
    aload 0
    invokestatic System.interrupt(LThread;)I
    pop
    aload 0
    invokestatic Thread.join(LThread;)V
    return
.end
"""
        assert run_source(src, timer=FixedTimer(5000)).output_text == "awake"

    def test_interrupt_running_thread_only_sets_flag(self):
        src = """.class Main
.field static t LThread;
.method static main ()V
    new Thread
    putstatic Main.t LThread;
    getstatic Main.t LThread;
    invokestatic System.interrupt(LThread;)I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "0"


class TestContendedHandoff:
    def test_fifo_handoff_order(self):
        """Entry-queue hand-off is FIFO: contenders acquire in arrival order."""
        src = """.class W
.super Thread
.field tag I
.method run ()V
    getstatic Main.lock LObject;
    monitorenter
    getstatic Main.log I
    iconst 10
    imul
    aload 0
    getfield W.tag I
    iadd
    putstatic Main.log I
    getstatic Main.lock LObject;
    monitorexit
    return
.end
.class Main
.field static lock LObject;
.field static log I
.method static main ()V
    new Object
    putstatic Main.lock LObject;
    getstatic Main.lock LObject;
    monitorenter
    new W
    astore 0
    aload 0
    iconst 1
    putfield W.tag I
    new W
    astore 1
    aload 1
    iconst 2
    putfield W.tag I
    aload 0
    invokestatic Thread.start(LThread;)V
    aload 1
    invokestatic Thread.start(LThread;)V
    invokestatic Thread.yield()V
    invokestatic Thread.yield()V
    getstatic Main.lock LObject;
    monitorexit
    aload 0
    invokestatic Thread.join(LThread;)V
    aload 1
    invokestatic Thread.join(LThread;)V
    getstatic Main.log I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src, timer=None).output_text == "12"
