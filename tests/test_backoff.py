"""The seeded backoff schedule: exact, injectable, shared.

One :class:`BackoffPolicy` object drives every network client's connect
retries — the debugger frontend and the remote campaign worker pool —
and because the jitter RNG is seeded, the *full* schedule is a concrete
list of numbers a test can assert without ever sleeping for real.
"""

import random
import socket

import pytest

from repro.campaign.pool import RemoteWorkerPool
from repro.core.framing import BackoffPolicy, TransportError
from repro.debugger.frontend import DebuggerClient


def dead_address():
    """A loopback port with nothing listening (bound, then released)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


class FakeClock:
    """Records requested sleeps; never actually waits."""

    def __init__(self):
        self.sleeps = []

    def __call__(self, seconds):
        self.sleeps.append(seconds)


class TestSchedule:
    def test_exact_seeded_schedule(self):
        policy = BackoffPolicy(attempts=6, base_delay=0.05, max_delay=1.0, jitter_seed=0)
        rng = random.Random(0)
        expected = [
            min(1.0, 0.05 * (2**i)) * (0.5 + rng.random() / 2) for i in range(5)
        ]
        assert policy.delays() == expected

    def test_schedule_is_deterministic(self):
        policy = BackoffPolicy(jitter_seed=7)
        assert policy.delays() == policy.delays()
        assert policy.delays() == BackoffPolicy(jitter_seed=7).delays()

    def test_different_seeds_differ(self):
        assert BackoffPolicy(jitter_seed=0).delays() != BackoffPolicy(jitter_seed=1).delays()

    def test_attempts_minus_one_delays(self):
        for attempts in (1, 2, 3, 6):
            assert len(BackoffPolicy(attempts=attempts).delays()) == max(0, attempts - 1)

    def test_cap_and_jitter_bounds(self):
        policy = BackoffPolicy(attempts=10, base_delay=0.1, max_delay=0.5, jitter_seed=3)
        delays = policy.delays()
        for i, delay in enumerate(delays):
            raw = min(0.5, 0.1 * (2**i))
            assert raw * 0.5 <= delay < raw
        # the cap actually bites on the tail of a 10-attempt schedule
        assert all(d <= 0.5 for d in delays)


class TestCall:
    def test_sleeps_match_schedule_on_eventual_success(self):
        policy = BackoffPolicy(attempts=6, jitter_seed=0)
        clock = FakeClock()
        failures = iter([OSError("a"), OSError("b"), OSError("c")])

        def flaky():
            for exc in failures:
                raise exc
            return "ok"

        assert policy.call(flaky, sleep=clock) == "ok"
        assert clock.sleeps == policy.delays()[:3]

    def test_exhaustion_raises_transport_error_with_describe(self):
        policy = BackoffPolicy(attempts=3, jitter_seed=0)
        clock = FakeClock()

        def always_fails():
            raise OSError("nope")

        with pytest.raises(TransportError) as info:
            policy.call(always_fails, sleep=clock, describe="could not reach X")
        assert "could not reach X after 3 attempts: nope" in str(info.value)
        assert clock.sleeps == policy.delays()  # every delay was used
        assert isinstance(info.value.__cause__, OSError)

    def test_non_retryable_errors_propagate_immediately(self):
        clock = FakeClock()

        def wrong_kind():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            BackoffPolicy().call(wrong_kind, sleep=clock)
        assert clock.sleeps == []

    def test_single_attempt_never_sleeps(self):
        policy = BackoffPolicy(attempts=1)
        clock = FakeClock()
        with pytest.raises(TransportError):
            policy.call(lambda: (_ for _ in ()).throw(OSError("x")), sleep=clock)
        assert clock.sleeps == []


class TestDebuggerConnectBackoff:
    def test_connect_refused_sleeps_exact_schedule(self):
        host, port = dead_address()
        clock = FakeClock()
        policy = BackoffPolicy(attempts=4, base_delay=0.05, max_delay=1.0, jitter_seed=0)
        with pytest.raises(TransportError) as info:
            DebuggerClient.connect((host, port), policy=policy, sleep=clock)
        assert f"could not connect to debugger at {host}:{port}" in str(info.value)
        assert "after 4 attempts" in str(info.value)
        assert clock.sleeps == policy.delays()

    def test_connect_kwargs_build_the_policy(self):
        host, port = dead_address()
        clock = FakeClock()
        with pytest.raises(TransportError):
            DebuggerClient.connect(
                (host, port), attempts=2, base_delay=0.01, jitter_seed=5, sleep=clock
            )
        assert clock.sleeps == BackoffPolicy(
            attempts=2, base_delay=0.01, jitter_seed=5
        ).delays()


class TestPoolSharesPolicy:
    def test_pool_reuses_the_same_policy_object(self):
        policy = BackoffPolicy(attempts=2, base_delay=0.01, jitter_seed=9)
        pool = RemoteWorkerPool([("127.0.0.1", 1)], backoff=policy)
        assert pool.backoff is policy
        assert pool.backoff.delays() == policy.delays()

    def test_pool_default_policy_is_the_shared_default(self):
        pool = RemoteWorkerPool([("127.0.0.1", 1)])
        assert pool.backoff == BackoffPolicy()

    def test_pool_rejects_empty_host_list(self):
        with pytest.raises(TransportError):
            RemoteWorkerPool([])
