"""The command-line interface."""

import io
import sys

import pytest

from repro.cli import main

MJ = """
class Main {
    static int total;
    static void main() {
        for (int i = 0; i <= 10; i++) Main.total += i;
        System.print("total=");
        System.printInt(Main.total);
    }
}
"""

JASM = """.class Main
.method static main ()V
    ldc "hi"
    invokestatic System.print(LString;)V
    return
.end
"""


@pytest.fixture
def mj_file(tmp_path):
    p = tmp_path / "prog.mj"
    p.write_text(MJ)
    return str(p)


@pytest.fixture
def jasm_file(tmp_path):
    p = tmp_path / "prog.jasm"
    p.write_text(JASM)
    return str(p)


def run_cli(argv, capsys):
    code = main(argv)
    out = capsys.readouterr()
    return code, out.out, out.err


class TestRun:
    def test_run_minij(self, mj_file, capsys):
        code, out, _ = run_cli(["run", mj_file, "--seed", "1"], capsys)
        assert code == 0
        assert "total=55" in out

    def test_run_jasm(self, jasm_file, capsys):
        code, out, _ = run_cli(["run", jasm_file, "--seed", "1"], capsys)
        assert code == 0
        assert out.startswith("hi")

    def test_missing_file(self, capsys):
        code, _, err = run_cli(["run", "/nope/missing.jasm"], capsys)
        assert code == 2  # usage error, not a finding
        assert "no such file" in err

    def test_unknown_extension(self, tmp_path, capsys):
        p = tmp_path / "x.txt"
        p.write_text("")
        code, _, err = run_cli(["run", str(p)], capsys)
        assert code == 2
        assert "unknown program type" in err


class TestRecordReplay:
    def test_roundtrip(self, mj_file, tmp_path, capsys):
        trace = str(tmp_path / "t.djv")
        code, out, _ = run_cli(
            ["record", mj_file, "--seed", "7", "-o", trace], capsys
        )
        assert code == 0 and "trace:" in out
        code, out, _ = run_cli(["replay", mj_file, trace], capsys)
        assert code == 0
        assert "total=55" in out
        assert "verified" in out

    def test_trace_info(self, mj_file, tmp_path, capsys):
        trace = str(tmp_path / "t.djv")
        run_cli(["record", mj_file, "--seed", "7", "-o", trace], capsys)
        code, out, _ = run_cli(["trace-info", trace], capsys)
        assert code == 0
        assert "switch records:" in out and "cycles:" in out

    def test_replay_wrong_program_fails(self, mj_file, jasm_file, tmp_path, capsys):
        trace = str(tmp_path / "t.djv")
        run_cli(["record", mj_file, "--seed", "7", "-o", trace], capsys)
        code, _, err = run_cli(["replay", jasm_file, trace], capsys)
        assert code == 1


class TestExitCodes:
    """The documented convention: 0 ok, 1 finding, 2 unusable input."""

    @pytest.fixture
    def bad_traces(self, tmp_path):
        empty = tmp_path / "empty.djv"
        empty.write_bytes(b"")
        notatrace = tmp_path / "not.djv"
        notatrace.write_bytes(b"PNG\x89 definitely not a trace")
        skew = tmp_path / "future.djv"
        skew.write_bytes(b"DJVU" + (99).to_bytes(2, "little") + b"\x00" * 16)
        return {"empty": empty, "not-a-trace": notatrace, "version-skew": skew}

    @pytest.mark.parametrize("which", ["empty", "not-a-trace", "version-skew"])
    def test_replay_unusable_trace_exits_2(self, bad_traces, which, mj_file, capsys):
        code, _, err = run_cli(["replay", mj_file, str(bad_traces[which])], capsys)
        assert code == 2
        # one-line typed error on stderr, no traceback
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize("which", ["empty", "not-a-trace", "version-skew"])
    def test_doctor_unusable_trace_exits_2(self, bad_traces, which, capsys):
        code, out, _ = run_cli(["doctor", str(bad_traces[which])], capsys)
        assert code == 2
        assert "classification:" in out

    def test_doctor_clean_trace_exits_0(self, mj_file, tmp_path, capsys):
        trace = str(tmp_path / "t.djv")
        run_cli(["record", mj_file, "--seed", "7", "-o", trace], capsys)
        code, out, _ = run_cli(["doctor", mj_file, trace], capsys)
        assert code == 0
        assert "classification: clean" in out

    def test_doctor_truncated_trace_exits_1(self, mj_file, tmp_path, capsys):
        trace = tmp_path / "t.djv"
        run_cli(["record", mj_file, "--seed", "7", "-o", str(trace)], capsys)
        trace.write_bytes(trace.read_bytes()[:-11])
        code, out, _ = run_cli(["doctor", mj_file, str(trace)], capsys)
        assert code == 1
        assert "classification: truncated-tail" in out

    def test_unknown_workload_parameter_exits_2(self, capsys):
        code, _, err = run_cli(
            ["run", "--workload", "bank", "-W", "bogus=1"], capsys
        )
        assert code == 2
        assert "no parameter" in err

    def test_unknown_workload_parameter_in_explore_exits_2(self, capsys):
        # explore builds programs through program_factory, not build() —
        # both paths must reject unknown keys as a usage error, not a
        # TypeError from the factory
        code, _, err = run_cli(
            ["explore", "--workload", "bank", "-W", "bogus=1"], capsys
        )
        assert code == 2
        assert "no parameter" in err


class TestFaultsCommand:
    def test_small_campaign_is_clean(self, capsys):
        code, out, _ = run_cli(
            ["faults", "--seed", "3", "--count", "8", "-W", "bank",
             "--heap", "60000"], capsys
        )
        assert code == 0
        assert "clean recovery or a typed diagnostic" in out


class TestDisasm:
    def test_disassembles_with_yieldpoint_counts(self, mj_file, capsys):
        code, out, _ = run_cli(["disasm", mj_file], capsys)
        assert code == 0
        assert ".class Main" in out
        assert "yield points" in out
        assert "getstatic" in out


class TestDebugRepl:
    def test_scripted_session(self, mj_file, tmp_path, capsys, monkeypatch):
        trace = str(tmp_path / "t.djv")
        run_cli(["record", mj_file, "--seed", "7", "-o", trace], capsys)
        script = "break Main.main()V 0\ncont\nbt\nstatic Main total\nfinish\nquit\n"
        monkeypatch.setattr(sys, "stdin", io.StringIO(script))
        code, out, _ = run_cli(["debug", mj_file, trace], capsys)
        assert code == 0
        assert "breakpoint" in out
        assert "Main.main @bci 0" in out
        assert "'status': 'done'" in out

    def test_repl_survives_bad_commands(self, mj_file, tmp_path, capsys, monkeypatch):
        trace = str(tmp_path / "t.djv")
        run_cli(["record", mj_file, "--seed", "7", "-o", trace], capsys)
        script = "bogus\nstatic Nope x\nquit\n"
        monkeypatch.setattr(sys, "stdin", io.StringIO(script))
        code, out, _ = run_cli(["debug", mj_file, trace], capsys)
        assert code == 0
        assert "unknown command" in out
        assert "error:" in out
