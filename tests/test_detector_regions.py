"""The detector's incremental race-region API — the half of slimming
that decides which switch deltas matter.

``RaceDetector.end_region()`` closes the window between two thread
switches and appends a :class:`RegionSummary`; the final
``racy_regions`` set (close-time verdicts plus retroactive pins from
races whose earlier access lived in an older window) is what
``slim_partition`` consults.  These tests pin:

* region bookkeeping adds up (one region per switch plus the tail,
  access counts partition the total, per-region races partition the
  race list);
* the incremental verdicts agree with the batch ``detect_races`` pass
  over the same recorded execution;
* attaching the detector + slim machinery perturbs nothing — when zero
  deltas are droppable the slim recording is bit-identical to the full
  one (same switches, same values, same guest behaviour).
"""

from __future__ import annotations

from repro.api import build_vm, record
from repro.core.controller import MODE_RECORD, DejaVu, slim_partition
from repro.explore.detector import RaceDetector, detect_races
from repro.vm.machine import VMConfig, with_baseline_engine
from repro.vm.timerdev import slim_model_of
from repro.workloads import racy_bank, readers_writers, synced_bank

from .conftest import jitter_knobs

SEED = 13
CFG = VMConfig(semispace_words=60_000)


def _record_with_detector(factory):
    """Mirror api.record(slim=True) but keep a handle on the detector."""
    program = factory()
    vm = build_vm(program, with_baseline_engine(CFG), **jitter_knobs(SEED))
    detector = RaceDetector(vm)
    dv = DejaVu(
        vm, MODE_RECORD, slim_spec=slim_model_of(vm.timer), slim_detector=detector
    )
    result = vm.run(program.main)
    trace = dv.trace()
    return program, detector, trace, result


def _race_key(race):
    return (
        race.location,
        (race.first.method, race.first.bci, race.first.kind, race.first.tid),
        (race.second.method, race.second.bci, race.second.kind, race.second.tid),
    )


def test_region_bookkeeping_partitions_the_run():
    """One region per switch firing plus the tail; access counts and
    per-region race lists partition the detector's totals exactly."""
    for factory in (lambda: racy_bank(3, 30), lambda: synced_bank(3, 30)):
        _, detector, trace, _ = _record_with_detector(factory)
        info = trace.slim_info
        n_firings = (
            (info["kept"] + info["dropped"]) if info else len(trace.switches)
        )
        assert len(detector.regions) == n_firings + 1
        assert [r.index for r in detector.regions] == list(range(n_firings + 1))
        assert (
            sum(r.n_accesses for r in detector.regions)
            == detector.stats["accesses"]
        )
        region_races = [race for r in detector.regions for race in r.races]
        assert sorted(map(_race_key, region_races)) == sorted(
            map(_race_key, detector.races)
        )


def test_racy_regions_cover_every_close_verdict():
    """``racy_regions`` is a superset of the close-time verdicts (it can
    only grow via retroactive pins) and every region that reported a
    race is in it."""
    _, detector, _, _ = _record_with_detector(lambda: racy_bank(3, 30))
    assert detector.races, "racy_bank must race"
    close_racy = {r.index for r in detector.regions if r.racy}
    reported = {r.index for r in detector.regions if r.races}
    assert close_racy <= detector.racy_regions
    assert reported <= detector.racy_regions
    assert detector.racy_regions <= {r.index for r in detector.regions}


def test_race_free_run_has_no_racy_regions():
    _, detector, trace, _ = _record_with_detector(lambda: synced_bank(3, 30))
    assert detector.races == []
    assert detector.racy_regions == set()
    # ... which is exactly why every delta slims away
    info = trace.slim_info
    if info is not None:
        assert info["kept"] == 0


def test_incremental_verdicts_match_batch_detector():
    """The region-tracked record-time pass and the batch replay-time
    ``detect_races`` pass analyse the same execution and must find the
    same races."""
    for factory in (lambda: racy_bank(3, 30), lambda: readers_writers(3, 2, 6)):
        program, detector, trace, _ = _record_with_detector(factory)
        report = detect_races(program, trace, config=CFG)
        assert sorted(map(_race_key, detector.races)) == sorted(
            map(_race_key, report.races)
        )
        assert detector.stats["accesses"] == report.stats["accesses"]


def test_partition_keeps_only_race_adjacent_deltas():
    """slim_partition's keep rule, checked against the detector's final
    region set on a run that actually races."""
    _, detector, trace, _ = _record_with_detector(lambda: racy_bank(3, 30))
    info = trace.slim_info
    if info is None:
        # every delta was race-adjacent: the recording degraded to full
        assert trace.meta.get("slim_fallback") == "no droppable deltas"
        deltas = trace.switches
        racy = detector.racy_regions
        kept, _, dropped = slim_partition(
            deltas, list(range(1, len(deltas) + 1)), racy
        )
        assert dropped == 0 and kept == deltas
    else:
        assert info["kept"] == len(trace.switches)


def test_zero_drop_slim_record_is_bit_identical():
    """When nothing is droppable the slim path must degrade to a
    recording indistinguishable from the full one: same switch stream,
    same value stream, same guest behaviour, same meta (modulo the
    fallback note)."""
    full = record(racy_bank(3, 30), config=CFG, **jitter_knobs(SEED))
    slim = record(racy_bank(3, 30), config=CFG, slim=True, **jitter_knobs(SEED))

    assert slim.result.behavior_key() == full.result.behavior_key()
    assert slim.trace.switches == full.trace.switches
    assert slim.trace.values == full.trace.values
    assert slim.trace.slim == []
    assert slim.trace.slim_info is None
    assert "slim_fallback" in slim.trace.meta

    slim_meta = dict(slim.trace.meta)
    slim_meta.pop("slim_fallback")
    assert slim_meta == dict(full.trace.meta)
