"""Flat memory, semispaces, boot record."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vm.errors import VMError
from repro.vm.memory import (
    BOOT_DICTIONARY,
    BOOT_MAGIC,
    BOOT_WORDS,
    MAGIC,
    Memory,
    MemoryFault,
)


class TestLayout:
    def test_magic_at_zero(self):
        mem = Memory(100)
        assert mem.read(0) == MAGIC
        assert mem.boot_read(BOOT_MAGIC) == MAGIC

    def test_null_is_never_allocatable(self):
        mem = Memory(100)
        addr = mem.alloc(1)
        assert addr is not None and addr >= BOOT_WORDS

    def test_semispace_bases(self):
        mem = Memory(100)
        assert mem.base == (BOOT_WORDS, BOOT_WORDS + 100)
        assert mem.space_of(BOOT_WORDS) == 0
        assert mem.space_of(BOOT_WORDS + 100) == 1
        assert mem.space_of(0) is None

    def test_too_small_rejected(self):
        with pytest.raises(VMError):
            Memory(10)


class TestAccess:
    def test_read_write(self):
        mem = Memory(100)
        mem.write(20, -5)
        assert mem.read(20) == -5

    def test_out_of_range(self):
        mem = Memory(100)
        with pytest.raises(MemoryFault):
            mem.read(BOOT_WORDS + 200)
        with pytest.raises(MemoryFault):
            mem.read(-1)
        with pytest.raises(MemoryFault):
            mem.write(BOOT_WORDS + 200, 1)

    def test_read_range(self):
        mem = Memory(100)
        for i in range(5):
            mem.write(20 + i, i * 10)
        assert mem.read_range(20, 5) == [0, 10, 20, 30, 40]

    def test_read_range_bounds(self):
        mem = Memory(100)
        with pytest.raises(MemoryFault):
            mem.read_range(BOOT_WORDS + 150, 100)

    def test_boot_magic_is_readonly(self):
        mem = Memory(100)
        with pytest.raises(MemoryFault):
            mem.boot_write(0, 1)
        mem.boot_write(BOOT_DICTIONARY, 99)
        assert mem.boot_read(BOOT_DICTIONARY) == 99


class TestAllocation:
    def test_bump_sequence(self):
        mem = Memory(100)
        a = mem.alloc(10)
        b = mem.alloc(5)
        assert b == a + 10

    def test_exhaustion_returns_none(self):
        mem = Memory(100)
        assert mem.alloc(90) is not None
        assert mem.alloc(20) is None
        assert mem.alloc(10) is not None  # exactly fits

    def test_bad_size(self):
        mem = Memory(100)
        with pytest.raises(MemoryFault):
            mem.alloc(0)

    def test_free_and_used(self):
        mem = Memory(100)
        mem.alloc(30)
        assert mem.used_words == 30
        assert mem.free_words == 70

    @given(st.lists(st.integers(min_value=1, max_value=10), max_size=30))
    def test_allocations_are_disjoint(self, sizes):
        mem = Memory(200)
        spans = []
        for size in sizes:
            addr = mem.alloc(size)
            if addr is None:
                break
            spans.append((addr, addr + size))
        for i, (lo1, hi1) in enumerate(spans):
            for lo2, hi2 in spans[i + 1 :]:
                assert hi1 <= lo2 or hi2 <= lo1
        for lo, hi in spans:
            assert mem.in_active(lo) and mem.in_active(hi - 1)


class TestFlip:
    def test_flip_swaps_active(self):
        mem = Memory(100)
        mem.alloc(10)
        to_base = mem.begin_flip()
        assert to_base == mem.base[1]
        mem.words[to_base] = 42
        mem.finish_flip(to_base + 1)
        assert mem.active == 1
        assert mem.used_words == 1
        assert mem.read(to_base) == 42

    def test_flip_zeroes_old_space(self):
        mem = Memory(100)
        addr = mem.alloc(3)
        mem.write(addr, 7)
        to = mem.begin_flip()
        mem.finish_flip(to)
        assert mem.read(addr) == 0

    def test_double_flip_returns_home(self):
        mem = Memory(100)
        mem.finish_flip(mem.begin_flip())
        mem.finish_flip(mem.begin_flip())
        assert mem.active == 0
        assert mem.bump == mem.base[0]
