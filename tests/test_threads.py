"""The thread package: spawning, preemption, joins, stacks, shadows."""

import pytest

from repro.vm import FixedTimer, SeededJitterTimer, VirtualMachine, assemble
from repro.vm import corelib
from repro.vm.machine import VMConfig
from tests.conftest import TEST_CONFIG, run_source


class TestSpawnJoin:
    SRC = """.class W
.super Thread
.method run ()V
    getstatic Main.done I
    iconst 1
    iadd
    putstatic Main.done I
    return
.end
.class Main
.field static done I
.method static main ()V
    new W
    astore 0
    new W
    astore 1
    aload 0
    invokestatic Thread.start(LThread;)V
    aload 1
    invokestatic Thread.start(LThread;)V
    aload 0
    invokestatic Thread.join(LThread;)V
    aload 1
    invokestatic Thread.join(LThread;)V
    getstatic Main.done I
    invokestatic System.printInt(I)V
    return
.end
"""

    def test_two_workers_complete(self):
        assert run_source(self.SRC).output_text == "2"

    def test_thread_events_emitted(self):
        result = run_source(self.SRC)
        starts = [e for e in result.events if e[0] == "thread_start"]
        ends = [e for e in result.events if e[0] == "thread_end"]
        assert len(starts) == 3  # main + 2 workers
        assert len(ends) == 3

    def test_join_on_terminated_thread_returns(self):
        src = """.class W
.super Thread
.method run ()V
    return
.end
.class Main
.method static main ()V
    new W
    astore 0
    aload 0
    invokestatic Thread.start(LThread;)V
    aload 0
    invokestatic Thread.join(LThread;)V
    aload 0
    invokestatic Thread.join(LThread;)V
    ldc "ok"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "ok"

    def test_start_null_traps(self):
        src = """.class Main
.method static main ()V
    aconst_null
    invokestatic Thread.start(LThread;)V
    return
.end
"""
        assert run_source(src).traps[0][1] == "NullPointer"

    def test_base_thread_run_is_noop(self):
        src = """.class Main
.method static main ()V
    new Thread
    dup
    invokestatic Thread.start(LThread;)V
    invokestatic Thread.join(LThread;)V
    ldc "ok"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "ok"

    def test_current_tid(self):
        src = """.class Main
.method static main ()V
    invokestatic Thread.currentTid()I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "0"


class TestPreemption:
    COUNT_SRC = """.class W
.super Thread
.method run ()V
    iconst 0
    istore 1
loop:
    iload 1
    iconst 2000
    if_icmpge done
    iinc 1 1
    goto loop
done:
    getstatic Main.order I
    ifne out
    aload 0
    getfield W.id I
    putstatic Main.order I
out:
    return
.end
.field id I
.class Main
.field static order I
.method static main ()V
    new W
    astore 0
    aload 0
    iconst 1
    putfield W.id I
    new W
    astore 1
    aload 1
    iconst 2
    putfield W.id I
    aload 0
    invokestatic Thread.start(LThread;)V
    aload 1
    invokestatic Thread.start(LThread;)V
    aload 0
    invokestatic Thread.join(LThread;)V
    aload 1
    invokestatic Thread.join(LThread;)V
    getstatic Main.order I
    invokestatic System.printInt(I)V
    return
.end
"""

    def test_fixed_timer_is_deterministic(self):
        runs = set()
        for _ in range(3):
            result = run_source(self.COUNT_SRC, timer=FixedTimer(500))
            runs.add((result.output_text, result.cycles, result.switches))
        assert len(runs) == 1
        assert result.switches > 2  # preemption actually happened

    def test_different_seeds_can_differ(self):
        outcomes = {
            run_source(self.COUNT_SRC, timer=SeededJitterTimer(s, 30, 900)).switches
            for s in range(6)
        }
        assert len(outcomes) > 1

    def test_no_timer_means_run_to_completion(self):
        result = run_source(self.COUNT_SRC, timer=None)
        # worker 1 finishes entirely before worker 2 is ever dispatched
        assert result.output_text == "1"

    def test_yield_rotates_ready_queue(self):
        src = """.class W
.super Thread
.field tag I
.method run ()V
    getstatic Main.log I
    iconst 10
    imul
    aload 0
    getfield W.tag I
    iadd
    putstatic Main.log I
    return
.end
.class Main
.field static log I
.method static main ()V
    new W
    astore 0
    aload 0
    iconst 1
    putfield W.tag I
    new W
    astore 1
    aload 1
    iconst 2
    putfield W.tag I
    aload 0
    invokestatic Thread.start(LThread;)V
    aload 1
    invokestatic Thread.start(LThread;)V
    invokestatic Thread.yield()V
    aload 0
    invokestatic Thread.join(LThread;)V
    aload 1
    invokestatic Thread.join(LThread;)V
    getstatic Main.log I
    invokestatic System.printInt(I)V
    return
.end
"""
        # with no timer, yield hands the CPU to worker 1 then worker 2
        assert run_source(src, timer=None).output_text == "12"


class TestSleep:
    def test_sleep_orders_by_duration(self):
        src = """.class W
.super Thread
.field ms I
.field tag I
.method run ()V
    aload 0
    getfield W.ms I
    invokestatic Thread.sleep(I)V
    getstatic Main.log I
    iconst 10
    imul
    aload 0
    getfield W.tag I
    iadd
    putstatic Main.log I
    return
.end
.class Main
.field static log I
.method static main ()V
    new W
    astore 0
    aload 0
    iconst 500
    putfield W.ms I
    aload 0
    iconst 1
    putfield W.tag I
    new W
    astore 1
    aload 1
    iconst 40
    putfield W.ms I
    aload 1
    iconst 2
    putfield W.tag I
    aload 0
    invokestatic Thread.start(LThread;)V
    aload 1
    invokestatic Thread.start(LThread;)V
    aload 0
    invokestatic Thread.join(LThread;)V
    aload 1
    invokestatic Thread.join(LThread;)V
    getstatic Main.log I
    invokestatic System.printInt(I)V
    return
.end
"""
        # the short sleeper (tag 2) wakes first: log = 0*10+2 then 2*10+1
        assert run_source(src, timer=None).output_text == "21"

    def test_sleep_zero_continues(self):
        src = """.class Main
.method static main ()V
    iconst 0
    invokestatic Thread.sleep(I)V
    ldc "ok"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "ok"


class TestGuestThreadMirror:
    def test_state_field_terminal(self):
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(assemble(
            """.class Main
.method static main ()V
    return
.end
"""
        ))
        vm.run()
        main_thread = vm.scheduler.threads[0]
        layout = vm.loader.classes["Thread"].layout
        state = vm.om.get_field(main_thread.guest_addr, layout.field_by_name["state"].offset)
        assert state == corelib.THREAD_TERMINATED

    def test_shadow_stack_depth_zero_after_exit(self):
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(assemble(".class Main\n.method static main ()V\n    return\n.end\n"))
        vm.run()
        t = vm.scheduler.threads[0]
        assert vm.om.array_get(t.shadow_addr, 0) == 0


class TestStackGrowth:
    DEEP = """.class Main
.method static deep (I)I
    iload 0
    ifgt rec
    iconst 0
    ireturn
rec:
    iload 0
    iconst 1
    isub
    invokestatic Main.deep(I)I
    iconst 1
    iadd
    ireturn
.end
.method static main ()V
    iconst 400
    invokestatic Main.deep(I)I
    invokestatic System.printInt(I)V
    return
.end
"""

    def test_deep_recursion_grows_stack(self):
        result = run_source(
            self.DEEP, config=VMConfig(semispace_words=60_000, initial_stack_words=128)
        )
        assert result.output_text == "400"
        grows = [e for e in result.events if e[0] == "stack_grow"]
        assert grows, "expected at least one stack growth"

    def test_growth_updates_guest_field(self):
        vm = VirtualMachine(VMConfig(semispace_words=60_000, initial_stack_words=128))
        vm.declare(assemble(self.DEEP))
        vm.run()
        t = vm.scheduler.threads[0]
        layout = vm.loader.classes["Thread"].layout
        guest_stack = vm.om.get_field(t.guest_addr, layout.field_by_name["stack"].offset)
        assert guest_stack == t.stack_addr
        assert vm.om.array_length(guest_stack) == t.stack_capacity
        assert t.stack_grows >= 1


class TestDeadlock:
    def test_deadlock_detected_gracefully(self):
        src = """.class Main
.field static o LObject;
.method static main ()V
    new Object
    putstatic Main.o LObject;
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.o LObject;
    invokestatic System.wait(LObject;)V
    return
.end
"""
        result = run_source(src)
        assert result.deadlocked == (0,)
        assert ("deadlock", (0,)) in result.events


class TestStackOverflowTrap:
    def test_infinite_recursion_traps_deterministically(self):
        src = """.class Main
.method static boom ()V
    invokestatic Main.boom()V
    return
.end
.method static main ()V
    invokestatic Main.boom()V
    return
.end
"""
        from repro.vm.machine import VMConfig

        result = run_source(src, config=VMConfig(semispace_words=400_000))
        assert result.traps and result.traps[0][1] == "StackOverflow"

    def test_overflowing_run_replays(self):
        from repro.api import GuestProgram, record_and_replay
        from repro.vm.machine import VMConfig
        from tests.conftest import jitter_knobs

        src = """.class Main
.method static boom ()V
    invokestatic Main.boom()V
    return
.end
.method static main ()V
    invokestatic Main.boom()V
    ldc "survived"
    invokestatic System.print(LString;)V
    return
.end
"""
        prog = GuestProgram.from_source(src)
        _, _, report = record_and_replay(
            prog, config=VMConfig(semispace_words=400_000), **jitter_knobs(2)
        )
        assert report.faithful
