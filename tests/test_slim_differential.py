"""Differential replay matrix for race-guided trace slimming (v3.2).

The slimming contract has two halves, and this suite pins both:

1. **Record is unperturbed** — ``record(slim=True)`` runs the guest
   bit-identically to a classic full recording (classification is
   host-side, post-hoc), so the two recordings of the same seeded run
   have equal behaviour keys.
2. **Replay is exact** — the slim trace, with most switch deltas dropped
   and re-derived from the modelled timer plus the sync-order sidecar,
   replays to byte-identical event streams and heap digests under every
   one of the 8 ``EngineConfig.all_combinations()`` engines, with and
   without checkpointing, on sync-heavy, racy, and mixed workloads
   alike.

The mixed workload is the interesting case: three unsynchronized teller
threads race on ``Main.balance`` (those windows must keep their deltas)
followed by a long single-threaded tail (every delta there is
sync-inferable and dropped) — slimming must keep *some* and drop *most*
and still replay exactly.
"""

from __future__ import annotations

import pytest

from repro.api import (
    GuestProgram,
    record,
    replay,
    resume_replay,
    trace_from_bytes,
    trace_to_bytes,
)
from repro.vm.engineconfig import EngineConfig
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank, readers_writers, server, synced_bank

from .conftest import jitter_knobs

SEED = 13
CFG = VMConfig(semispace_words=60_000)

WORKLOADS = {
    "synced_bank": lambda: synced_bank(4, 60),
    "racy_bank": lambda: racy_bank(3, 30),
    "server": lambda: server(3, 20, 5, work_scale=20),
    "readers_writers": lambda: readers_writers(3, 2, 6),
}

ENGINES = EngineConfig.all_combinations()

# three unsynchronized tellers race on Main.balance (race-adjacent
# windows: deltas kept), then a long single-threaded tail on Main.tail
# (sync-inferable windows: deltas dropped)
MIXED_SRC = """
.class Teller
.super Thread
.method run ()V
    iconst 0
    istore 1
loop:
    iload 1
    iconst 30
    if_icmpge done
    getstatic Main.balance I
    iconst 1
    iadd
    putstatic Main.balance I
    iinc 1 1
    goto loop
done:
    return
.end

.class Main
.field static balance I
.field static tail I
.field static tellers [LThread;
.method static main ()V
    iconst 3
    anewarray LThread;
    putstatic Main.tellers [LThread;
    iconst 0
    istore 0
spawn:
    iload 0
    iconst 3
    if_icmpge started
    getstatic Main.tellers [LThread;
    iload 0
    new Teller
    aastore
    getstatic Main.tellers [LThread;
    iload 0
    aaload
    invokestatic Thread.start(LThread;)V
    iinc 0 1
    goto spawn
started:
    iconst 0
    istore 0
join:
    iload 0
    iconst 3
    if_icmpge joined
    getstatic Main.tellers [LThread;
    iload 0
    aaload
    invokestatic Thread.join(LThread;)V
    iinc 0 1
    goto join
joined:
    iconst 0
    istore 1
tail:
    iload 1
    iconst 4000
    if_icmpge out
    getstatic Main.tail I
    iconst 1
    iadd
    putstatic Main.tail I
    iinc 1 1
    goto tail
out:
    getstatic Main.balance I
    invokestatic System.printInt(I)V
    return
.end
"""


def mixed_program() -> GuestProgram:
    return GuestProgram.from_source(MIXED_SRC, name="mixed")


@pytest.fixture(scope="module")
def recordings():
    """Record every workload once, full and slim, with identical seeded
    knobs; cache the baseline replay of each as the reference."""
    cache = {}
    for name, factory in WORKLOADS.items():
        full = record(factory(), config=CFG, **jitter_knobs(SEED))
        slim = record(factory(), config=CFG, slim=True, **jitter_knobs(SEED))
        reference = replay(factory(), full.trace, config=CFG)
        cache[name] = (factory, full, slim, reference)
    return cache


def test_slim_record_is_guest_identical(recordings):
    """Slim recording must not perturb the execution it observes: the
    guest-visible behaviour of the slim-recorded run equals the full
    one's (same seeds, same schedule, same heap)."""
    for name, (_, full, slim, _) in recordings.items():
        assert slim.result.behavior_key() == full.result.behavior_key(), name


def test_slim_trace_never_larger(recordings):
    for name, (_, full, slim, _) in recordings.items():
        assert (
            slim.trace.encoded_size_bytes <= full.trace.encoded_size_bytes
        ), name


def test_sync_heavy_workloads_actually_drop(recordings):
    """The sync-heavy, race-free workloads are the point of the feature:
    their slim traces must drop deltas, not merely degrade to full."""
    for name in ("synced_bank", "readers_writers"):
        _, full, slim, _ = recordings[name]
        info = slim.trace.slim_info
        assert info is not None, f"{name}: fell back to full recording"
        assert info["dropped"] > 0, name
        assert info["kept"] + info["dropped"] == len(full.trace.switches), name


@pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.describe())
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_differential_replay_matrix(recordings, name, engine):
    """Every workload's slim trace replays byte-identically to the full
    trace under every engine combination: same event stream, same heap
    digest, same cycle count."""
    factory, full, slim, reference = recordings[name]
    cfg = VMConfig(semispace_words=60_000, engine=engine)
    r_slim = replay(factory(), slim.trace, config=cfg)
    r_full = replay(factory(), full.trace, config=cfg)
    assert r_slim.events == r_full.events, (name, engine.describe())
    assert r_slim.heap_digest == r_full.heap_digest, (name, engine.describe())
    assert r_slim.behavior_key() == reference.behavior_key(), (
        name,
        engine.describe(),
    )


def test_mixed_workload_keeps_racing_deltas(tmp_path):
    """Known-racy workload: slimming keeps the race-adjacent deltas
    (kept > 0), drops the sync-inferable tail (dropped > 0), and the
    replay is still exact under every engine."""
    prog = mixed_program()
    full = record(prog, config=CFG, **jitter_knobs(SEED))
    slim = record(prog, config=CFG, slim=True, **jitter_knobs(SEED))
    assert slim.result.behavior_key() == full.result.behavior_key()

    info = slim.trace.slim_info
    assert info is not None, "mixed workload fell back to full recording"
    assert info["kept"] > 0, "racing-adjacent deltas must stay explicit"
    assert info["dropped"] > 0, "the single-threaded tail must slim away"
    assert slim.trace.encoded_size_bytes <= full.trace.encoded_size_bytes

    reference = replay(prog, full.trace, config=CFG)
    for engine in ENGINES:
        cfg = VMConfig(semispace_words=60_000, engine=engine)
        r = replay(prog, slim.trace, config=cfg)
        assert r.behavior_key() == reference.behavior_key(), engine.describe()


def test_slim_replay_with_checkpointing(tmp_path):
    """The differential holds with checkpointing in the loop: a slim
    replay that captures snapshots, and a resume from the newest one,
    both land on the full-replay behaviour."""
    prog = mixed_program()
    full = record(prog, config=CFG, **jitter_knobs(SEED))
    slim = record(prog, config=CFG, slim=True, **jitter_knobs(SEED))
    reference = replay(prog, full.trace, config=CFG)

    ckpt = tmp_path / "mixed.djv.ckpt"
    r = replay(
        prog,
        slim.trace,
        config=CFG,
        checkpoint_every=5_000,
        checkpoint_out=ckpt,
    )
    assert r.behavior_key() == reference.behavior_key()

    resumed = resume_replay(prog, slim.trace, checkpoints=ckpt, config=CFG)
    assert resumed.resumed_from is not None, resumed.attempts
    assert resumed.result.behavior_key() == reference.behavior_key()


def test_slim_trace_file_roundtrip(recordings, tmp_path):
    """A slim trace survives the byte round-trip (v3.2 codec) and the
    reloaded copy replays identically."""
    factory, _, slim, reference = recordings["synced_bank"]
    data = trace_to_bytes(slim.trace)
    reloaded = trace_from_bytes(data)
    assert reloaded.slim == slim.trace.slim
    assert reloaded.slim_info == slim.trace.slim_info
    assert reloaded.switches == slim.trace.switches
    r = replay(factory(), reloaded, config=CFG)
    assert r.behavior_key() == reference.behavior_key()
