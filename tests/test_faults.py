"""The fault-injection harness: plans, injectors, and campaigns.

The contract under test: a fault may cost data but never correctness —
every injected failure ends in clean recovery or a typed diagnostic.
The full 100-fault acceptance campaign is marked ``fuzz`` and runs in
the CI faults-smoke job; a small campaign runs in tier 1.
"""

import pytest

from repro.api import record, replay_prefix
from repro.core.tracelog import TraceLog
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    apply_trace_fault,
    arm_native_fault,
    run_campaign,
    segment_boundaries,
)
from repro.faults.fixtures import (  # noqa: F401 - pytest fixtures
    fault_plan,
    fault_seed,
    fault_workdir,
)
from repro.vm import SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import server

CFG = VMConfig(semispace_words=60_000)
SMALL_BANK = {"tellers": 2, "deposits": 8}


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        assert FaultPlan.generate(42, 30).specs == FaultPlan.generate(42, 30).specs

    def test_different_seed_different_plan(self):
        assert FaultPlan.generate(1, 30).specs != FaultPlan.generate(2, 30).specs

    def test_layer_filter(self):
        plan = FaultPlan.generate(7, 40, layers=("trace",))
        assert len(plan) == 40
        assert all(s.layer == "trace" for s in plan)

    @pytest.mark.fault_seed(7)
    @pytest.mark.fault_count(15)
    def test_fixture_honours_markers(self, fault_plan):  # noqa: F811
        assert fault_plan.seed == 7
        assert len(fault_plan) == 15


class TestTraceInjectors:
    @pytest.fixture
    def blob(self, tmp_path):
        path = tmp_path / "t.djv"
        record(
            server(n_workers=2, n_requests=6, seed=0, work_scale=1),
            config=CFG,
            timer=SeededJitterTimer(5, 40, 160),
            out=path,
        )
        return path.read_bytes()

    def test_bit_flip_changes_exactly_one_byte(self, blob):
        spec = FaultSpec(0, "bit-flip", (0.5, 3))
        damaged = apply_trace_fault(blob, spec)
        assert len(damaged) == len(blob)
        diffs = [i for i, (a, b) in enumerate(zip(blob, damaged)) if a != b]
        assert len(diffs) == 1

    def test_truncate_shortens(self, blob):
        damaged = apply_trace_fault(blob, FaultSpec(0, "truncate", (0.7,)))
        assert 0 < len(damaged) < len(blob)
        assert blob.startswith(damaged)

    def test_torn_write_cuts_at_a_segment_boundary(self, blob):
        header = 6
        candidates = {header, *segment_boundaries(blob)[:-1]}
        for frac in (0.0, 0.3, 0.6, 0.99):
            damaged = apply_trace_fault(blob, FaultSpec(0, "torn-write", (frac,)))
            assert len(damaged) in candidates


class TestNativeInjector:
    def test_nth_nondet_call_raises_and_tmp_salvages(self, tmp_path):
        out = tmp_path / "t.djv"
        program = server(n_workers=2, n_requests=10, seed=0, work_scale=1)
        with pytest.raises(InjectedFault, match="call #5"):
            record(
                program,
                config=CFG,
                timer=SeededJitterTimer(5, 40, 160),
                out=out,
                vm_hook=lambda vm: arm_native_fault(vm, 5),
            )
        assert not out.exists()  # the seal never happened
        trace = TraceLog.salvage(out.with_name(out.name + ".tmp"))
        assert trace.truncated
        prefix = replay_prefix(
            server(n_workers=2, n_requests=10, seed=0, work_scale=1),
            trace,
            config=CFG,
        )
        assert prefix.result is not None

    def test_counter_reports_not_triggered(self, tmp_path):
        out = tmp_path / "t.djv"
        counters = []
        record(
            server(n_workers=2, n_requests=4, seed=0, work_scale=1),
            config=CFG,
            timer=SeededJitterTimer(5, 40, 160),
            out=out,
            vm_hook=lambda vm: counters.append(arm_native_fault(vm, 10_000)),
        )
        assert out.exists()
        assert 0 < counters[0]["calls"] < 10_000


class TestCampaign:
    def test_small_campaign_meets_the_contract(self, fault_workdir):  # noqa: F811
        plan = FaultPlan.generate(11, 15)
        report = run_campaign(
            plan,
            workload="bank",
            workload_kwargs=SMALL_BANK,
            config=CFG,
            workdir=fault_workdir,
        )
        assert len(report.outcomes) == 15
        assert report.ok, report.format()
        assert "typed diagnostic" in report.format()

    def test_campaign_on_value_stream_workload(self, fault_workdir):  # noqa: F811
        # the server workload records real value words, so trace faults
        # can land in the value stream too
        plan = FaultPlan.generate(23, 12, layers=("trace", "native"))
        report = run_campaign(
            plan,
            workload="server",
            workload_kwargs={"n_workers": 2, "n_requests": 8, "work_scale": 1},
            config=CFG,
            workdir=fault_workdir,
        )
        assert report.ok, report.format()

    @pytest.mark.fuzz
    def test_acceptance_campaign_seed42_100_faults(self, fault_workdir):  # noqa: F811
        report = run_campaign(
            FaultPlan.generate(42, 100),
            workload="bank",
            workdir=fault_workdir,
        )
        assert len(report.outcomes) == 100
        assert report.ok, report.format()
        tally = report.tally()
        assert not any(k.startswith("unclassified") for k in tally)
        assert "hang" not in tally and "undetected" not in tally
