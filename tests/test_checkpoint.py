"""Verified checkpoint/restore: capture, sidecar framing, resume ladder.

The contract under test (the robustness tentpole): a snapshot restores
to *exactly* the machine state the from-zero replay passes through — the
restore either reproduces the from-zero digests at every later boundary
and the identical final result, or it is refused with a typed error.  A
damaged sidecar may cost seek acceleration, never correctness.
"""

import pytest

from repro.api import (
    build_vm,
    record,
    replay,
    resume_replay,
)
from repro.core import MODE_REPLAY, DejaVu
from repro.core.checkpoint import (
    CheckpointRecorder,
    CheckpointStore,
    CheckpointWriter,
    Snapshot,
    restore_vm,
    sidecar_path,
)
from repro.core.tracelog import TraceLog
from repro.faults import FaultPlan, run_campaign
from repro.faults.plan import LAYER_CHECKPOINT
from repro.vm import SeededJitterTimer
from repro.vm.engineconfig import EngineConfig
from repro.vm.errors import (
    CheckpointConfigMismatch,
    CheckpointError,
    CheckpointFormatError,
)
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank

CFG = VMConfig(semispace_words=60_000)
EVERY = 700  # small enough that the short bank run crosses several boundaries


@pytest.fixture(scope="module")
def recorded():
    return record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))


def _replay_with_recorder(trace, config=CFG, every=EVERY):
    """From-zero replay with an in-memory recorder attached; returns
    (snapshots, result)."""
    program = racy_bank()
    vm = build_vm(program, config)
    DejaVu(vm, MODE_REPLAY, trace=trace)
    rec = CheckpointRecorder(vm, every)
    result = vm.run(program.main)
    return rec.snapshots, result


class _StopAt:
    """Minimal debug controller that pauses the engine at a cycle count
    (the shape :class:`repro.debugger.timetravel._CycleStop` has)."""

    def __init__(self, target, engine):
        self.target = target
        self.engine = engine
        self.paused = False
        self.reason = None
        self.breakpoints = set()

    def resume(self):
        self.paused = False

    def check(self, thread, frame, pc):
        if self.engine.cycles >= self.target:
            self.paused = True
            self.target = 1 << 62
            return True
        return False


class TestCaptureRestore:
    def test_restore_reproduces_every_later_boundary(self, recorded):
        """From each snapshot, the restored run must hit the same later
        boundaries with the same digests and finish with the same result
        as the from-zero replay — the definition of a verified restore."""
        snapshots, clean = _replay_with_recorder(recorded.trace)
        assert len(snapshots) >= 3
        witness = [(s.cycles, s.digest) for s in snapshots]
        for i, snap in enumerate(snapshots):
            vm = restore_vm(snap, racy_bank(), recorded.trace, config=CFG)
            assert vm.engine.cycles == snap.cycles
            rec = CheckpointRecorder(vm, EVERY)
            vm.engine.run()
            result = vm.finish()
            assert [(s.cycles, s.digest) for s in rec.snapshots] == witness[i + 1:]
            assert result.heap_digest == clean.heap_digest
            assert result.output_text == clean.output_text
            assert result.cycles == clean.cycles

    def test_boundaries_identical_across_all_engine_combos(self, recorded):
        """Cycle counting is deterministic under every dispatch config,
        so all 8 combos snapshot at identical boundaries — and each
        combo's restore reproduces its own later digests exactly.  (The
        digests themselves are per-combo: the snapshot header carries
        engine statistics, which differ by dispatch configuration.)"""
        reference_cycles = None
        for combo in EngineConfig.all_combinations():
            cfg = VMConfig(semispace_words=60_000, engine=combo)
            snapshots, _ = _replay_with_recorder(recorded.trace, config=cfg)
            witness = [(s.cycles, s.digest) for s in snapshots]
            cycles = [c for c, _ in witness]
            if reference_cycles is None:
                reference_cycles = cycles
            else:
                assert cycles == reference_cycles, combo.describe()
            # restore the middle snapshot under the same combo
            mid = len(snapshots) // 2
            vm = restore_vm(snapshots[mid], racy_bank(), recorded.trace, config=cfg)
            rec = CheckpointRecorder(vm, EVERY)
            vm.engine.run()
            vm.finish()
            digests = [(s.cycles, s.digest) for s in rec.snapshots]
            assert digests == witness[mid + 1:], combo.describe()

    def test_recording_byte_identical_with_checkpointing(self, tmp_path):
        """The capture hook is guest-invisible: recording with and
        without checkpoints produces byte-identical trace files."""
        plain, ckpt = tmp_path / "plain.djv", tmp_path / "ckpt.djv"
        record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160), out=plain)
        record(
            racy_bank(),
            config=CFG,
            timer=SeededJitterTimer(5, 40, 160),
            out=ckpt,
            checkpoint_every=500,
        )
        assert plain.read_bytes() == ckpt.read_bytes()
        assert sidecar_path(ckpt).exists()

    def test_machine_digest_changes_with_execution(self, recorded):
        snapshots, _ = _replay_with_recorder(recorded.trace)
        digests = [s.digest for s in snapshots]
        assert len(set(digests)) == len(digests)

    def test_record_mode_snapshot_refuses_restore(self, tmp_path):
        out = tmp_path / "r.djv"
        box = {}

        def grab(vm):
            rec = CheckpointRecorder(vm, EVERY)
            box["rec"] = rec

        session = record(
            racy_bank(),
            config=CFG,
            timer=SeededJitterTimer(5, 40, 160),
            out=out,
            vm_hook=grab,
        )
        snap = box["rec"].snapshots[0]
        assert snap.mode == "record"
        with pytest.raises(CheckpointError):
            restore_vm(snap, racy_bank(), session.trace, config=CFG)

    def test_snapshot_verify_catches_tampering(self, recorded):
        snapshots, _ = _replay_with_recorder(recorded.trace)
        snap = snapshots[0]
        words = list(snap.words)
        words[len(words) // 2] ^= 1
        tampered = Snapshot(dict(snap.header), words)
        with pytest.raises(CheckpointFormatError):
            tampered.verify()


class TestSidecar:
    @pytest.fixture
    def sealed(self, recorded, tmp_path):
        trace_path = tmp_path / "t.djv"
        recorded.trace.save(trace_path)
        replay(
            racy_bank(),
            TraceLog.load(trace_path),
            config=CFG,
            checkpoint_every=EVERY,
            checkpoint_out=sidecar_path(trace_path),
        )
        return trace_path

    def test_roundtrip(self, recorded, sealed):
        store = CheckpointStore.load(sidecar_path(sealed))
        assert store.sealed and not store.damaged
        assert store.meta["every"] == EVERY
        assert store.meta["mode"] == "replay"
        snapshots, _ = _replay_with_recorder(recorded.trace)
        assert [(s.cycles, s.digest) for s in store.snapshots] == [
            (s.cycles, s.digest) for s in snapshots
        ]

    def test_tmp_fallback_after_crash(self, recorded, tmp_path):
        """An abandoned (unsealed) writer leaves a tmp the store loads."""
        sidecar = tmp_path / "x.ckpt"
        snapshots, _ = _replay_with_recorder(recorded.trace)
        writer = CheckpointWriter(sidecar)
        for snap in snapshots[:2]:
            writer.add(snap)
        writer.abandon()
        assert not sidecar.exists()
        store = CheckpointStore.load(sidecar)
        assert store.source == "tmp" and not store.sealed and store.damaged
        assert [s.cycles for s in store.snapshots] == [
            s.cycles for s in snapshots[:2]
        ]

    def test_corrupt_tail_drops_only_the_tail(self, sealed):
        sidecar = sidecar_path(sealed)
        n_clean = len(CheckpointStore.load(sidecar).snapshots)
        blob = bytearray(sidecar.read_bytes())
        blob[len(blob) // 2] ^= 1
        sidecar.write_bytes(bytes(blob))
        store = CheckpointStore.load(sidecar)
        assert store.error is not None and store.damaged
        assert 0 < len(store.snapshots) < n_clean

    def test_digest_failing_snapshot_is_skipped(self, recorded, tmp_path):
        sidecar = tmp_path / "x.ckpt"
        snapshots, _ = _replay_with_recorder(recorded.trace)
        words = list(snapshots[0].words)
        words[len(words) // 2] ^= 1
        writer = CheckpointWriter(sidecar)
        writer.add(Snapshot(dict(snapshots[0].header), words))
        writer.add(snapshots[1])
        writer.seal({})
        store = CheckpointStore.load(sidecar)
        assert store.skipped == 1
        assert [s.cycles for s in store.snapshots] == [snapshots[1].cycles]

    def test_missing_sidecar_raises_typed(self, tmp_path):
        with pytest.raises(CheckpointFormatError):
            CheckpointStore.load(tmp_path / "nope.ckpt")

    def test_nearest_is_strictly_before(self, recorded, sealed):
        store = CheckpointStore.load(sidecar_path(sealed))
        cycles = [s.cycles for s in store.snapshots]
        # exactly at a boundary: must pick the *previous* one
        assert store.nearest(cycles[1]).cycles == cycles[0]
        assert store.nearest(cycles[0]) is None
        assert store.nearest(10**9).cycles == cycles[-1]


class TestResumeReplay:
    @pytest.fixture
    def sealed(self, recorded, tmp_path):
        trace_path = tmp_path / "t.djv"
        recorded.trace.save(trace_path)
        replay(
            racy_bank(),
            TraceLog.load(trace_path),
            config=CFG,
            checkpoint_every=EVERY,
            checkpoint_out=sidecar_path(trace_path),
        )
        return trace_path

    def _assert_matches_clean(self, resumed, recorded):
        assert resumed.result.heap_digest == recorded.result.heap_digest
        assert resumed.result.output_text == recorded.result.output_text
        assert resumed.result.cycles == recorded.result.cycles

    def test_resume_from_newest_checkpoint(self, recorded, sealed):
        sidecar = sidecar_path(sealed)
        newest = max(s.cycles for s in CheckpointStore.load(sidecar).snapshots)
        resumed = resume_replay(
            racy_bank(), TraceLog.load(sealed), checkpoints=sidecar, config=CFG
        )
        assert resumed.resumed_from == newest and not resumed.from_zero
        self._assert_matches_clean(resumed, recorded)

    def test_corrupt_sidecar_falls_back_to_earlier_checkpoint(
        self, recorded, sealed
    ):
        sidecar = sidecar_path(sealed)
        blob = bytearray(sidecar.read_bytes())
        blob[len(blob) // 2] ^= 1
        sidecar.write_bytes(bytes(blob))
        resumed = resume_replay(
            racy_bank(), TraceLog.load(sealed), checkpoints=sidecar, config=CFG
        )
        assert any("scan stopped" in a for a in resumed.attempts)
        self._assert_matches_clean(resumed, recorded)

    def test_missing_sidecar_replays_from_zero(self, recorded, sealed):
        sidecar = sidecar_path(sealed)
        sidecar.unlink()
        resumed = resume_replay(
            racy_bank(), TraceLog.load(sealed), checkpoints=sidecar, config=CFG
        )
        assert resumed.from_zero
        assert any("from cycle zero" in a for a in resumed.attempts)
        self._assert_matches_clean(resumed, recorded)

    def test_crash_mid_replay_resumes_from_tmp(self, recorded, tmp_path):
        """The crash-resume story end to end: a replay dies mid-run, its
        checkpoint writer abandoned; resume finishes from the tmp."""
        trace_path = tmp_path / "t.djv"
        recorded.trace.save(trace_path)
        sidecar = sidecar_path(trace_path)
        program = racy_bank()
        vm = build_vm(program, CFG)
        DejaVu(vm, MODE_REPLAY, trace=TraceLog.load(trace_path))
        writer = CheckpointWriter(sidecar)
        rec = CheckpointRecorder(vm, EVERY, writer=writer)
        vm.start(program.main)
        vm.engine.debug = _StopAt(recorded.result.cycles * 3 // 4, vm.engine)
        vm.engine.run()  # pauses mid-replay: the "crash" point
        assert not vm.completed
        rec.abandon()
        assert not sidecar.exists()
        resumed = resume_replay(
            racy_bank(), TraceLog.load(trace_path), checkpoints=sidecar, config=CFG
        )
        assert not resumed.from_zero
        self._assert_matches_clean(resumed, recorded)

    def test_config_mismatch_is_typed_not_repaired(self, recorded, sealed):
        with pytest.raises(CheckpointConfigMismatch):
            resume_replay(
                racy_bank(),
                TraceLog.load(sealed),
                checkpoints=sidecar_path(sealed),
                config=VMConfig(semispace_words=80_000),
            )

    def test_engine_combo_mismatch_is_typed(self, recorded, sealed):
        store = CheckpointStore.load(sidecar_path(sealed))
        snap = store.snapshots[0]
        baseline = VMConfig(semispace_words=60_000, engine=EngineConfig.baseline())
        with pytest.raises(CheckpointConfigMismatch):
            restore_vm(snap, racy_bank(), TraceLog.load(sealed), config=baseline)


class TestCheckpointFaultCampaign:
    def test_small_campaign_recovers(self, tmp_path):
        plan = FaultPlan.generate(11, 8, layers=(LAYER_CHECKPOINT,))
        report = run_campaign(
            plan,
            workload="bank",
            workload_kwargs={"tellers": 2, "deposits": 10},
            config=CFG,
            workdir=tmp_path,
        )
        assert report.ok, report.format()
        assert len(report.outcomes) == 8

    @pytest.mark.fuzz
    def test_acceptance_campaign(self, tmp_path):
        plan = FaultPlan.generate(42, 50, layers=(LAYER_CHECKPOINT,))
        report = run_campaign(plan, workload="bank", config=CFG, workdir=tmp_path)
        assert report.ok, report.format()


class TestWatchdog:
    def test_hung_fault_is_classified_not_waited_on(self, tmp_path, monkeypatch):
        """A fault runner that never returns must surface as ``hang``
        within the configured watchdog — the harness may not block."""
        import time

        import repro.faults.campaign as campaign_mod

        monkeypatch.setattr(
            campaign_mod, "_run_one", lambda spec, **ctx: time.sleep(30)
        )
        plan = FaultPlan.generate(1, 1, layers=("trace",))
        report = run_campaign(
            plan,
            workload="bank",
            workload_kwargs={"tellers": 2, "deposits": 8},
            config=CFG,
            workdir=tmp_path,
            fault_timeout=0.3,
        )
        assert report.outcomes[0].outcome == "hang"
        assert "0.3" in report.outcomes[0].detail
        assert not report.ok
