"""Class loading, linking, vtables, statics, heap metadata."""

import pytest

from repro.vm import VirtualMachine, assemble
from repro.vm.errors import LinkError
from repro.vm.layout import HEADER_WORDS
from repro.vm.memory import BOOT_DICTIONARY
from tests.conftest import TEST_CONFIG

SRC = """
.class Animal
.field legs I
.field static population I
.method speak ()I
    iconst 0
    ireturn
.end
.method legCount ()I
    aload 0
    getfield Animal.legs I
    ireturn
.end

.class Dog
.super Animal
.method speak ()I
    iconst 1
    ireturn
.end
"""


@pytest.fixture
def world():
    vm = VirtualMachine(TEST_CONFIG)
    vm.declare(assemble(SRC))
    vm.load("Dog")
    return vm


class TestLinking:
    def test_super_loaded_first(self, world):
        animal = world.loader.classes["Animal"]
        dog = world.loader.classes["Dog"]
        assert dog.super_rc is animal
        assert animal.class_id < dog.class_id

    def test_vtable_override(self, world):
        animal = world.loader.classes["Animal"]
        dog = world.loader.classes["Dog"]
        assert dog.vtable["speak()I"].owner is dog
        assert dog.vtable["legCount()I"].owner is animal
        assert animal.vtable["speak()I"].owner is animal

    def test_methods_compiled_and_mapped(self, world):
        rm = world.loader.resolve_method_any("Dog.speak()I")
        assert rm.code is not None
        assert rm.maps is not None

    def test_method_ids_are_dictionary_indices(self, world):
        for rm in world.loader.method_by_id:
            assert world.loader.method_by_id[rm.method_id] is rm

    def test_unknown_class(self, world):
        with pytest.raises(LinkError):
            world.loader.load("Ghost")

    def test_unresolved_member(self, world):
        with pytest.raises(LinkError):
            world.loader.resolve_instance_field("Animal.tail")
        with pytest.raises(LinkError):
            world.loader.resolve_method_any("Animal.fly()V")

    def test_static_resolution_walks_supers(self, world):
        holder_rc, slot = world.loader.resolve_static_field("Dog.population")
        assert holder_rc.name == "Animal"
        assert slot.desc == "I"

    def test_duplicate_declare_rejected(self, world):
        with pytest.raises(LinkError):
            world.loader.declare(assemble(".class Animal\n")[0])


class TestInterning:
    def test_intern_dedupes(self, world):
        a = world.loader.intern("hello")
        b = world.loader.intern("hello")
        assert a == b

    def test_read_string_roundtrip(self, world):
        addr = world.loader.intern("päivää\n")
        assert world.loader.read_string(addr) == "päivää\n"

    def test_make_string_is_fresh(self, world):
        a = world.loader.make_string("x")
        b = world.loader.make_string("x")
        assert a != b


class TestHeapMetadata:
    def test_dictionary_rooted_in_boot_record(self, world):
        holder = world.memory.boot_read(BOOT_DICTIONARY)
        assert holder != 0

    def test_dictionary_counts_match_loader(self, world):
        om = world.om
        rc, slayout = world.loader._dict_statics()
        count = om.get_field(rc.statics_addr, slayout.field_by_name["methodCount"].offset)
        assert count == len(world.loader.method_by_id)

    def test_vm_method_metadata_indexed_by_method_id(self, world):
        om = world.om
        loader = world.loader
        rc, slayout = loader._dict_statics()
        marr = om.get_field(rc.statics_addr, slayout.field_by_name["methods"].offset)
        vmm_layout = loader.classes["VM_Method"].layout
        rm = loader.resolve_method_any("Dog.speak()I")
        vmm = om.array_get(marr, rm.method_id)
        assert om.get_field(vmm, vmm_layout.field_by_name["methodId"].offset) == rm.method_id
        name_addr = om.get_field(vmm, vmm_layout.field_by_name["name"].offset)
        assert loader.read_string(name_addr) == "speak"

    def test_line_table_in_heap_matches_classdef(self, world):
        om = world.om
        loader = world.loader
        rm = loader.resolve_method_any("Animal.legCount()I")
        rc, slayout = loader._dict_statics()
        marr = om.get_field(rc.statics_addr, slayout.field_by_name["methods"].offset)
        vmm = om.array_get(marr, rm.method_id)
        vmm_layout = loader.classes["VM_Method"].layout
        lt = om.get_field(vmm, vmm_layout.field_by_name["lineTable"].offset)
        assert om.array_length(lt) == len(rm.mdef.code)
        for bci, line in rm.mdef.line_table.items():
            assert om.array_get(lt, bci) == line

    def test_every_class_id_resolvable_via_dictionary(self, world):
        """Any class id in an object header must map to a VM_Class entry —
        including arrays and statics holders (the remote debugger relies
        on this)."""
        om = world.om
        loader = world.loader
        world.om.new_array("[LDog;", 1)  # force a fresh array class
        rc, slayout = loader._dict_statics()
        carr = om.get_field(rc.statics_addr, slayout.field_by_name["classes"].offset)
        ccount = om.get_field(rc.statics_addr, slayout.field_by_name["classCount"].offset)
        vmc_layout = loader.classes["VM_Class"].layout
        ids_in_dict = set()
        for i in range(ccount):
            vmc = om.array_get(carr, i)
            ids_in_dict.add(om.get_field(vmc, vmc_layout.field_by_name["classId"].offset))
        for layout in loader.class_table:
            assert layout.class_id in ids_in_dict, layout.name

    def test_loading_allocates_deterministically(self):
        """Two identical VMs end up with byte-identical heaps — the basis
        of the symmetry-in-class-loading rule."""
        def build():
            vm = VirtualMachine(TEST_CONFIG)
            vm.declare(assemble(SRC))
            vm.load("Dog")
            return vm

        a, b = build(), build()
        assert a.memory.bump == b.memory.bump
        assert a.heap_digest() == b.heap_digest()


class TestConstantsPool:
    def test_constants_array_materialised(self):
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(
            assemble(
                """
.class T
.method static m ()V
    ldc "a"
    pop
    ldc "b"
    pop
    return
.end
"""
            )
        )
        vm.load("T")
        rc = vm.loader.classes["T"]
        assert rc.constants_addr != 0
        assert vm.om.array_length(rc.constants_addr) == 2
        first = vm.om.array_get(rc.constants_addr, 0)
        assert vm.loader.read_string(first) == "a"
