"""Campaign worker-failure handling: a dead worker's shard is
reassigned, never dropped.

The runner ships its own fault-injection seam (``_sabotage``): worker W
calls ``os._exit(13)`` after its K-th completed item — exactly the
mid-shard ``kill -9`` the watchdog must survive.  The contract under
test: 100% work-list coverage, a typed :class:`WorkerIncident`
diagnostic, no hang, and a result identical to the undisturbed run.
"""

import pytest

from repro.campaign import (
    Campaign,
    WorkerIncident,
    run_explore_campaign,
    run_faults_campaign,
)
from repro.faults.fixtures import (  # noqa: F401 - pytest fixtures
    fault_plan,
    fault_seed,
)
from repro.vm.errors import VMError
from repro.vm.machine import VMConfig

CFG = VMConfig(semispace_words=60_000)


class TestExploreWorkerCrash:
    def test_crash_mid_shard_is_reassigned(self):
        undisturbed = run_explore_campaign(
            "bank", bound=1, budget=30, jobs=1, config=CFG
        )
        survived = run_explore_campaign(
            "bank",
            bound=1,
            budget=30,
            jobs=2,
            config=CFG,
            watchdog=30.0,
            _sabotage={"worker": 0, "after": 2},
        )
        # typed diagnostic, not a silent retry
        crashes = [i for i in survived.incidents if i.kind == "crash"]
        assert crashes, survived.incidents
        assert isinstance(crashes[0], WorkerIncident)
        assert "exit code 13" in crashes[0].detail
        assert crashes[0].reassigned > 0
        # full coverage, identical outcome
        assert survived.schedules_run == undisturbed.schedules_run
        assert survived.digest() == undisturbed.digest()

    def test_crash_with_corpus_is_still_byte_identical(self, tmp_path):
        from tests.test_campaign_differential import corpus_files

        clean = tmp_path / "clean"
        crashed = tmp_path / "crashed"
        run_explore_campaign(
            "bank", bound=1, budget=30, jobs=1, config=CFG, corpus_dir=clean
        )
        run_explore_campaign(
            "bank",
            bound=1,
            budget=30,
            jobs=2,
            config=CFG,
            corpus_dir=crashed,
            watchdog=30.0,
            _sabotage={"worker": 1, "after": 1},
        )
        assert corpus_files(clean) == corpus_files(crashed)


class TestFaultsWorkerCrash:
    @pytest.mark.fault_seed(5)
    def test_crash_mid_shard_is_reassigned(self, fault_seed):  # noqa: F811
        from repro.faults import FaultPlan

        plan = FaultPlan.generate(fault_seed, 6, layers=("trace",))
        undisturbed = run_faults_campaign(
            plan, workload="bank", layers=("trace",), config=CFG, jobs=1
        )
        survived = run_faults_campaign(
            plan,
            workload="bank",
            layers=("trace",),
            config=CFG,
            jobs=2,
            watchdog=60.0,
            _sabotage={"worker": 0, "after": 1},
        )
        assert [i.kind for i in survived.incidents].count("crash") >= 1
        assert len(survived.report.outcomes) == len(plan)  # 100% coverage
        assert survived.digest() == undisturbed.digest()


class TestRunnerEdges:
    def test_restart_budget_exhaustion_falls_back_inline(self):
        """With a zero restart budget the parent itself runs the dead
        worker's items — coverage survives even the restart path."""
        report = run_explore_campaign(
            "bank",
            bound=1,
            budget=20,
            jobs=2,
            config=CFG,
            watchdog=30.0,
            max_restarts=0,
            _sabotage={"worker": 0, "after": 1},
        )
        reference = run_explore_campaign(
            "bank", bound=1, budget=20, jobs=1, config=CFG
        )
        assert report.digest() == reference.digest()
        assert any(i.kind == "crash" for i in report.incidents)

    def test_jobs_must_be_positive(self):
        with pytest.raises(VMError, match="jobs must be >= 1"):
            Campaign({"kind": "explore"}, [], jobs=0)

    def test_unknown_job_kind_is_typed(self):
        from repro.campaign import CampaignHarnessError

        with pytest.raises(CampaignHarnessError):
            Campaign({"kind": "nonsense"}, [(1,)], jobs=1).run()

    def test_empty_worklist_is_trivially_covered(self):
        outcome = Campaign({"kind": "explore"}, [], jobs=4).run()
        assert outcome.covered and outcome.results == {}
