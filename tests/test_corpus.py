"""The content-addressed failure corpus: ingest/list/replay round trips,
duplicate no-ops, crash-tolerant loading, and prune's never-lose-a-
behavior guarantee."""

import json

import pytest

from repro.api import record, replay, trace_to_bytes
from repro.campaign import Corpus, entry_name
from repro.vm.errors import UsageError
from repro.vm.machine import VMConfig
from repro.vm.timerdev import SeededJitterTimer
from repro.workloads.registry import get_workload

CFG = VMConfig(semispace_words=60_000)
BANK = {"tellers": 2, "deposits": 4}


def bank_blob(seed: int) -> bytes:
    """A small sealed bank trace, deterministic in *seed*."""
    spec = get_workload("bank")
    session = record(
        spec.build(BANK),
        config=CFG,
        timer=SeededJitterTimer(seed, 40, 160),
        extra_meta={"workload": spec.name, "workload_kwargs": BANK},
    )
    return trace_to_bytes(session.trace)


def meta_for(seed: int, behavior: str) -> dict:
    return {
        "kind": "explore",
        "workload": "racy_bank",
        "workload_kwargs": dict(BANK),
        "seed": seed,
        "behavior": behavior,
        "reason": "test fixture",
        "heap": CFG.semispace_words,
    }


class TestIngest:
    def test_round_trip_list_and_replay(self, tmp_path):
        blob = bank_blob(1)
        corpus = Corpus(tmp_path / "c", create=True)
        name, new = corpus.ingest(blob, meta_for(1, "b1"))
        assert new and name == entry_name(blob)

        reloaded = Corpus(tmp_path / "c")
        assert [e.name for e in reloaded.entries()] == [name]
        assert reloaded.blob(name) == blob
        entry = reloaded.get(name)
        assert entry.meta["workload"] == "racy_bank"
        assert entry.meta["sha256"].startswith(name)
        # the stored artifact is a standard replayable trace
        trace = reloaded.trace(name)
        result = replay(get_workload("bank").build(BANK), trace, config=CFG)
        assert result.output_text  # verified against the END witnesses

    def test_duplicate_ingest_is_a_noop(self, tmp_path):
        blob = bank_blob(1)
        corpus = Corpus(tmp_path / "c", create=True)
        name1, new1 = corpus.ingest(blob, meta_for(1, "b1"))
        index_after_first = (tmp_path / "c" / "index.json").read_bytes()
        name2, new2 = corpus.ingest(blob, meta_for(1, "b1"))
        assert (name1, new1, name2, new2) == (name1, True, name1, False)
        assert len(corpus) == 1
        assert (tmp_path / "c" / "index.json").read_bytes() == index_after_first

    def test_distinct_content_distinct_entries(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        corpus.ingest(bank_blob(1), meta_for(1, "b1"))
        corpus.ingest(bank_blob(2), meta_for(2, "b2"))
        assert len(corpus) == 2

    def test_missing_corpus_dir_is_usage_error(self, tmp_path):
        with pytest.raises(UsageError, match="no corpus directory"):
            Corpus(tmp_path / "nope")

    def test_unknown_entry_is_usage_error(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        with pytest.raises(UsageError, match="no corpus entry"):
            corpus.get("deadbeefdeadbeef")


class TestCrashTolerance:
    def test_torn_tmp_files_are_ignored(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        name, _ = corpus.ingest(bank_blob(1), meta_for(1, "b1"))
        # a crash mid-ingest leaves the writer's tmp behind
        (tmp_path / "c" / "feedfacefeedface.djv.tmp.999").write_bytes(b"torn")
        (tmp_path / "c" / "index.json.tmp.999").write_text("{")
        reloaded = Corpus(tmp_path / "c")
        assert [e.name for e in reloaded.entries()] == [name]

    def test_orphan_blob_is_adopted_from_trace_meta(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        name, _ = corpus.ingest(bank_blob(1), meta_for(1, "b1"))
        # a crash between blob write and index write: blob, no row
        (tmp_path / "c" / "index.json").unlink()
        reloaded = Corpus(tmp_path / "c")
        entry = reloaded.get(name)
        assert entry.meta["source"] == "adopted"
        assert entry.meta["workload"] == "racy_bank"  # from the trace itself
        assert entry.meta["workload_kwargs"] == BANK

    def test_damaged_index_is_rebuilt(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        name, _ = corpus.ingest(bank_blob(1), meta_for(1, "b1"))
        (tmp_path / "c" / "index.json").write_text("{not json")
        reloaded = Corpus(tmp_path / "c")
        assert len(reloaded) == 1 and reloaded.get(name)

    def test_index_row_without_blob_is_dropped(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        name, _ = corpus.ingest(bank_blob(1), meta_for(1, "b1"))
        (tmp_path / "c" / f"{name}.djv").unlink()
        assert len(Corpus(tmp_path / "c")) == 0


class TestPrune:
    def test_prune_keeps_one_per_behavior(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        for seed in (1, 2, 3):
            corpus.ingest(bank_blob(seed), meta_for(seed, "behaviorA"))
        for seed in (4, 5):
            corpus.ingest(bank_blob(seed), meta_for(seed, "behaviorB"))
        kept, removed = corpus.prune(keep_per_behavior=1)
        assert (kept, removed) == (2, 3)
        behaviors = {e.meta["behavior"] for e in corpus.entries()}
        assert behaviors == {"behaviorA", "behaviorB"}

    def test_prune_never_deletes_the_last_copy(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        corpus.ingest(bank_blob(1), meta_for(1, "only"))
        for keep in (1, 0, -5):  # hostile keep values clamp to 1
            kept, removed = corpus.prune(keep_per_behavior=keep)
            assert (kept, removed) == (1, 0)

    def test_prune_choice_is_deterministic(self, tmp_path):
        """Two equivalent corpora prune to the same survivors (the
        lexicographically-first names per group)."""
        survivors = []
        for d in ("c1", "c2"):
            corpus = Corpus(tmp_path / d, create=True)
            for seed in (1, 2, 3):
                corpus.ingest(bank_blob(seed), meta_for(seed, "same"))
            corpus.prune(keep_per_behavior=1)
            survivors.append([e.name for e in corpus.entries()])
        assert survivors[0] == survivors[1]

    def test_prune_survives_reload(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        for seed in (1, 2):
            corpus.ingest(bank_blob(seed), meta_for(seed, "same"))
        corpus.prune(keep_per_behavior=1)
        reloaded = Corpus(tmp_path / "c")
        assert len(reloaded) == 1
        data = json.loads((tmp_path / "c" / "index.json").read_text())
        assert len(data["entries"]) == 1


def _ingest_when_released(root, blob, meta, barrier):
    """Child body: open the corpus, line up at the barrier, ingest."""
    corpus = Corpus(root)
    barrier.wait()
    corpus.ingest(blob, meta)


def _die_mid_ingest(root, blob):
    """Child body: a remote worker killed between the tmp write and the
    atomic rename — exactly what `remote-kill-worker` leaves behind."""
    import os

    name = entry_name(blob)
    tmp = root / f"{name}.djv.tmp.{os.getpid()}"
    tmp.write_bytes(blob[: len(blob) // 2])
    os._exit(9)  # no rename, no index write


class TestConcurrentIngest:
    """Two campaign workers racing the same corpus directory.  The
    tmp-name-per-pid + atomic-rename discipline and the content address
    make the race harmless: same blob → one entry, distinct blobs →
    reconcile adopts whatever the last index write lost."""

    def fork(self, target, *args):
        import multiprocessing

        return multiprocessing.get_context("fork").Process(
            target=target, args=args
        )

    def test_same_blob_from_four_workers_is_one_entry(self, tmp_path):
        root = tmp_path / "c"
        Corpus(root, create=True)
        blob = bank_blob(1)
        import multiprocessing

        barrier = multiprocessing.get_context("fork").Barrier(4)
        children = [
            self.fork(_ingest_when_released, root, blob, meta_for(1, "b1"), barrier)
            for _ in range(4)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=30)
            assert child.exitcode == 0
        entries = [p for p in root.iterdir() if p.suffix == ".djv"]
        assert [p.stem for p in entries] == [entry_name(blob)]
        assert entries[0].read_bytes() == blob  # never torn
        data = json.loads((root / "index.json").read_text())  # intact, valid
        assert list(data["entries"]) == [entry_name(blob)]
        assert len(Corpus(root)) == 1

    def test_distinct_blobs_from_racing_workers_both_survive(self, tmp_path):
        root = tmp_path / "c"
        Corpus(root, create=True)
        blobs = [bank_blob(1), bank_blob(2)]
        import multiprocessing

        barrier = multiprocessing.get_context("fork").Barrier(2)
        children = [
            self.fork(
                _ingest_when_released, root, blob, meta_for(i, f"b{i}"), barrier
            )
            for i, blob in enumerate(blobs)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=30)
            assert child.exitcode == 0
        # the slower index write may have lost the other's row; reload
        # reconciles by adopting the orphan blob from its own trace meta
        reloaded = Corpus(root)
        assert len(reloaded) == 2
        for blob in blobs:
            assert reloaded.blob(entry_name(blob)) == blob

    def test_killed_worker_leaves_only_an_ignorable_tmp(self, tmp_path):
        root = tmp_path / "c"
        corpus = Corpus(root, create=True)
        keep, _ = corpus.ingest(bank_blob(1), meta_for(1, "b1"))
        victim_blob = bank_blob(2)
        child = self.fork(_die_mid_ingest, root, victim_blob)
        child.start()
        child.join(timeout=30)
        assert child.exitcode == 9
        assert any(".tmp" in p.name for p in root.iterdir())  # the wreckage
        reloaded = Corpus(root)
        assert [e.name for e in reloaded.entries()] == [keep]
        # the same failure, re-delivered by a healthy worker, lands clean
        name, new = reloaded.ingest(victim_blob, meta_for(2, "b2"))
        assert new and name == entry_name(victim_blob)
        assert reloaded.blob(name) == victim_blob


class TestStats:
    def test_stats_group_by_canonical_workload(self, tmp_path):
        corpus = Corpus(tmp_path / "c", create=True)
        corpus.ingest(bank_blob(1), meta_for(1, "b1"))
        corpus.ingest(bank_blob(2), meta_for(2, "b2"))
        stats = corpus.stats()
        assert stats["entries"] == 2
        assert stats["behaviors"] == 2
        assert stats["bytes"] > 0
        assert stats["by_workload"] == {"racy_bank(deposits=4,tellers=2)": 2}
