"""Degenerate-input audits: salvage edge cases and frame reassembly.

Two satellite hardening passes, pinned as regression tests:

* :meth:`TraceLog.salvage` on pathological files — empty, header-only,
  cut exactly at a segment boundary, cut mid-segment-header — must
  return a well-typed result (a typed error or a clean truncated log),
  never an index error or a silently wrong stream;
* :class:`FrameDecoder` on adversarial chunking — a partial length
  prefix at EOF, a frame split across feeds, several frames in one
  chunk — must buffer/reassemble exactly, and the serve loop must *log*
  a hostile client rather than crash or go dark.
"""

import socket

import pytest

from repro.api import record
from repro.core.tracelog import MAGIC, FORMAT_VERSION, TraceLog
from repro.debugger import Debugger, DebuggerClient, DebuggerServer, ReplaySession
from repro.debugger.protocol import (
    LEN_BYTES,
    FrameDecoder,
    FrameError,
    decode,
    encode,
    frame,
)
from repro.faults.inject import segment_boundaries
from repro.vm import SeededJitterTimer
from repro.vm.errors import TraceFormatError
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank

CFG = VMConfig(semispace_words=60_000)


@pytest.fixture(scope="module")
def sealed_blob(tmp_path_factory):
    path = tmp_path_factory.mktemp("salvage") / "t.djv"
    record(
        racy_bank(tellers=2, deposits=10),
        config=CFG,
        timer=SeededJitterTimer(5, 40, 160),
        out=path,
    )
    return path.read_bytes()


class TestSalvageDegenerates:
    def test_empty_file_raises_typed(self, tmp_path):
        path = tmp_path / "empty.djv"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            TraceLog.load(path)
        with pytest.raises(TraceFormatError):
            TraceLog.salvage(path)

    def test_header_only_salvages_to_empty_truncated_log(self, tmp_path):
        path = tmp_path / "hdr.djv"
        path.write_bytes(MAGIC + FORMAT_VERSION.to_bytes(2, "little"))
        log = TraceLog.salvage(path)
        assert log.truncated
        assert log.n_switch_records == 0 and log.n_value_words == 0
        assert log.salvage_report.intact_segments == 0

    def test_cut_exactly_at_segment_boundary_stops_cleanly(
        self, sealed_blob, tmp_path
    ):
        """The off-by-one trap: a file ending exactly where a segment
        ends has no torn bytes — salvage must keep every segment before
        the cut and report a clean (not mid-segment) stop."""
        boundaries = segment_boundaries(sealed_blob)
        assert len(boundaries) >= 2
        cut = boundaries[len(boundaries) // 2]
        path = tmp_path / "cut.djv"
        path.write_bytes(sealed_blob[:cut])
        log = TraceLog.salvage(path)
        assert log.truncated  # no footer: the log is a prefix
        report = log.salvage_report
        assert report.intact_segments == boundaries.index(cut) + 1
        assert report.error is None  # boundary cut: nothing torn

    def test_cut_mid_segment_header_keeps_prefix(self, sealed_blob, tmp_path):
        boundaries = segment_boundaries(sealed_blob)
        cut = boundaries[len(boundaries) // 2]
        path = tmp_path / "cut.djv"
        path.write_bytes(sealed_blob[: cut + 5])  # 5 of 9 header bytes
        log = TraceLog.salvage(path)
        assert log.truncated
        assert log.salvage_report.intact_segments == boundaries.index(cut) + 1
        assert log.salvage_report.error is not None

    def test_sealed_file_salvages_identically_to_load(self, sealed_blob, tmp_path):
        path = tmp_path / "t.djv"
        path.write_bytes(sealed_blob)
        loaded, salvaged = TraceLog.load(path), TraceLog.salvage(path)
        assert not salvaged.truncated
        assert salvaged.switches == loaded.switches
        assert salvaged.values == loaded.values


class TestFrameDecoderPins:
    def test_partial_length_prefix_at_eof_buffers(self):
        decoder = FrameDecoder()
        wire = frame({"id": 1, "cmd": "ping", "args": {}})
        assert decoder.feed(wire[: LEN_BYTES - 2]) == []
        assert decoder.pending_bytes == LEN_BYTES - 2
        # the rest arrives in a later chunk: the frame completes
        assert [decode(p) for p in decoder.feed(wire[LEN_BYTES - 2:])] == [
            {"id": 1, "cmd": "ping", "args": {}}
        ]
        assert decoder.pending_bytes == 0

    def test_frame_split_across_many_feeds_reassembles(self):
        decoder = FrameDecoder()
        wire = frame({"id": 2, "cmd": "info", "args": {}})
        got = []
        for i in range(len(wire)):  # one byte at a time
            got.extend(decoder.feed(wire[i: i + 1]))
        assert [decode(p) for p in got] == [{"id": 2, "cmd": "info", "args": {}}]

    def test_two_frames_in_one_chunk(self):
        decoder = FrameDecoder()
        wire = frame({"id": 1}) + frame({"id": 2})
        assert [decode(p)["id"] for p in decoder.feed(wire)] == [1, 2]

    def test_absurd_length_prefix_rejected_before_buffering(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(b"\xff\xff\xff\xff" + b"junk")

    def test_exact_cap_length_is_allowed(self):
        decoder = FrameDecoder(max_frame_bytes=8)
        payload = encode({"a": 1})
        assert len(payload) <= 8
        wire = len(payload).to_bytes(LEN_BYTES, "big") + payload
        assert decoder.feed(wire) == [payload]


class TestServeLoopLogsNotCrashes:
    @pytest.fixture
    def served(self):
        recorded = record(
            racy_bank(tellers=2, deposits=10),
            config=CFG,
            timer=SeededJitterTimer(5, 40, 160),
        )
        session = ReplaySession(racy_bank(tellers=2, deposits=10), recorded.trace, config=CFG)
        logged: list[str] = []
        srv = DebuggerServer(Debugger(session), log=logged.append).start()
        yield srv, logged
        srv.stop()

    def test_unframeable_stream_is_logged_and_survived(self, served):
        srv, logged = served
        with socket.create_connection(srv.address, timeout=5.0) as sock:
            sock.sendall(b"\xff\xff\xff\xffgarbage")
            sock.settimeout(2.0)
            try:
                while sock.recv(4096):
                    pass  # drain until the server closes this connection
            except OSError:
                pass
        # the loop survived: a fresh client still gets served
        with DebuggerClient.connect(srv.address) as client:
            assert client.ping()
        assert any("unframeable" in line for line in logged)
        assert srv.frame_errors == 1

    def test_undecodable_payload_is_logged_and_answered(self, served):
        srv, logged = served
        payload = b"[1, 2, 3]"  # valid JSON, not a protocol object
        wire = len(payload).to_bytes(LEN_BYTES, "big") + payload
        with socket.create_connection(srv.address, timeout=5.0) as sock:
            sock.sendall(wire)
            decoder = FrameDecoder()
            frames = []
            while not frames:
                chunk = sock.recv(4096)
                assert chunk
                frames = decoder.feed(chunk)
            response = decode(frames[0])
        assert response == {"ok": False, "error": "bad json"}
        assert any("undecodable request payload" in line for line in logged)
        # same connection keeps serving after the bad payload
        with DebuggerClient.connect(srv.address) as client:
            assert client.ping()
