"""The LAYER_SERVE fault family: a `repro serve` daemon under attack.

Each serve fault drives a loopback daemon and classifies the outcome
against the campaign contract — clean recovery or a typed diagnostic,
never a hang, a raw traceback, or silent corruption.  The family's
hardening claim is differential: after every fault, a concurrent
well-formed job must return results byte-identical to the clean
reference, on the *same* daemon the fault just attacked.

Plan stability matters as much as the faults: serve kinds were appended
to ``KINDS``, so every seeded plan over the older layer sets stays
byte-for-byte reproducible (the generator draws from the layer-filtered
kind list).

Fast kinds run in tier 1; the full seeded campaign is ``fuzz``-marked
and runs in the CI serve-smoke job.
"""

import pytest

from repro.faults import FaultPlan, run_campaign
from repro.faults.plan import KINDS, LAYER_SERVE, FaultSpec
from repro.faults.campaign import FaultRunContext
from repro.vm.machine import VMConfig

CFG = VMConfig(semispace_words=60_000)

SERVE_KINDS = [k for k, layer in KINDS.items() if layer == LAYER_SERVE]


class TestPlanStability:
    def test_serve_kinds_are_registered(self):
        assert SERVE_KINDS == [
            "serve-client-vanish",
            "serve-poison-job",
            "serve-hung-workload",
            "serve-deadline-exceeded",
            "serve-queue-storm",
            "serve-kill-during-drain",
        ]

    def test_default_layers_never_draw_serve_kinds(self):
        plan = FaultPlan.generate(42, 50)
        assert all(s.layer != LAYER_SERVE for s in plan)

    def test_pre_serve_plans_are_byte_stable(self):
        """The append-only guarantee: adding the serve family did not
        move a single draw of the seeded default-layer plan."""
        plan = FaultPlan.generate(42, 6)
        assert [s.kind for s in plan] == [
            "delay-frame",
            "delay-frame",
            "truncate",
            "bit-flip",
            "drop-frame",
            "native-error",
        ]

    def test_serve_layer_draws_only_serve_kinds_with_sane_params(self):
        plan = FaultPlan.generate(11, 60, layers=(LAYER_SERVE,))
        assert len(plan) == 60
        seen = set()
        for spec in plan:
            assert spec.layer == LAYER_SERVE
            seen.add(spec.kind)
            if spec.kind == "serve-client-vanish":
                assert 0 <= spec.params[0] < 1
            elif spec.kind == "serve-poison-job":
                assert spec.params[0] in (0, 1, 2)
            elif spec.kind == "serve-hung-workload":
                assert 0.3 <= spec.params[0] <= 0.8
            elif spec.kind == "serve-deadline-exceeded":
                assert 0.005 <= spec.params[0] <= 0.05
            elif spec.kind == "serve-queue-storm":
                assert 6 <= spec.params[0] < 14
            elif spec.kind == "serve-kill-during-drain":
                assert 0.05 <= spec.params[0] <= 0.3
        assert seen == set(SERVE_KINDS)  # 60 draws cover all six kinds

    def test_context_requires_a_workload_name(self, tmp_path):
        class FakeProgram:
            name = "fake"

        with pytest.raises(ValueError, match="workload name"):
            FaultRunContext(
                seed=1,
                layers=(LAYER_SERVE,),
                program_factory=FakeProgram,
                workdir=tmp_path,
            )


@pytest.fixture(scope="module")
def serve_context(tmp_path_factory):
    """One warm context for every per-kind test: a single loopback
    daemon survives all of them on one accept loop — that persistence
    is the hardening claim, not an optimization."""
    context = FaultRunContext(
        seed=42,
        layers=(LAYER_SERVE,),
        workload="bank",
        config=CFG,
        workdir=tmp_path_factory.mktemp("serve-faults"),
    )
    with context:
        yield context


def run_kind(context, kind, params):
    return context.run_spec(FaultSpec(index=0, kind=kind, params=params))


class TestServeFaultOutcomes:
    def test_client_vanish_recovers(self, serve_context):
        outcome = run_kind(serve_context, "serve-client-vanish", (0.1,))
        assert outcome.outcome == "recovered", outcome.detail

    @pytest.mark.parametrize("variant", [0, 1, 2])
    def test_poison_job_recovers(self, serve_context, variant):
        outcome = run_kind(serve_context, "serve-poison-job", (variant,))
        assert outcome.outcome == "recovered", outcome.detail

    def test_hung_workload_is_a_typed_deadline(self, serve_context):
        outcome = run_kind(serve_context, "serve-hung-workload", (0.4,))
        assert outcome.outcome == "diagnosed:JobDeadlineExceeded", (
            outcome.detail
        )

    def test_deadline_exceeded_is_typed_or_not_triggered(self, serve_context):
        outcome = run_kind(serve_context, "serve-deadline-exceeded", (0.005,))
        assert outcome.outcome in (
            "diagnosed:JobDeadlineExceeded",
            "not-triggered",
        ), outcome.detail

    def test_queue_storm_converges(self, serve_context):
        outcome = run_kind(serve_context, "serve-queue-storm", (8,))
        assert outcome.outcome == "recovered", outcome.detail

    def test_kill_during_drain_is_recovery_or_typed(self, serve_context):
        outcome = run_kind(serve_context, "serve-kill-during-drain", (0.1,))
        assert outcome.ok, f"{outcome.outcome}: {outcome.detail}"

    def test_daemon_survived_the_whole_battery(self, serve_context):
        """After every fault above, the shared loopback daemon still
        reproduces the clean reference byte-for-byte."""
        assert serve_context._serve.check_clean() == ""


@pytest.mark.fuzz
def test_seeded_serve_campaign_recovers(tmp_path):
    """The acceptance gate: `repro faults --layers serve --seed 42` —
    100% of planned faults land in clean recovery or a typed
    diagnostic."""
    report = run_campaign(
        FaultPlan.generate(42, 12, layers=(LAYER_SERVE,)),
        workload="bank",
        config=CFG,
        workdir=tmp_path,
    )
    assert report.ok, report.format()
    assert len(report.outcomes) == 12
    assert (
        "every fault ended in clean recovery or a typed diagnostic"
        in report.format()
    )
