"""The three-tier debugger: control, inspection, TCP protocol, perturbation."""

import pytest

from repro.api import record, replay
from repro.core import compare_runs
from repro.debugger import (
    DebugController,
    Debugger,
    DebuggerClient,
    DebuggerServer,
    ReplaySession,
)
from repro.vm import SeededJitterTimer
from repro.vm.errors import VMError
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank
from tests.conftest import jitter_knobs

CFG = VMConfig(semispace_words=60_000)


@pytest.fixture
def recorded():
    return record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))


@pytest.fixture
def session(recorded):
    return ReplaySession(racy_bank(), recorded.trace, config=CFG)


class TestBreakpoints:
    def test_break_and_continue(self, session):
        session.add_breakpoint("Teller.run()V", bci=0)
        status = session.resume()
        assert status == "breakpoint"
        frames = session.where()
        assert frames[0].method_name == "run"
        assert frames[0].class_name == "Teller"
        assert frames[0].bci == 0

    def test_line_breakpoint(self, session):
        rm = session.resolve_method("Teller.run()V")
        some_line = rm.mdef.line_table[2]
        mid, bci = session.add_line_breakpoint("Teller.run()V", some_line)
        assert bci == 2
        assert session.resume() == "breakpoint"
        assert session.where()[0].line == some_line

    def test_bad_breakpoints_rejected(self, session):
        with pytest.raises(VMError):
            session.add_breakpoint("Teller.run()V", bci=9999)
        with pytest.raises(VMError):
            session.add_line_breakpoint("Teller.run()V", 424242)
        with pytest.raises(VMError):
            session.add_breakpoint("System.print(LString;)V")  # native

    def test_run_to_completion_after_breaks(self, session, recorded):
        session.add_breakpoint("Teller.run()V", bci=0)
        hits = 0
        while session.resume() == "breakpoint" and hits < 3:
            hits += 1
        result = session.run_to_completion()
        assert hits == 3
        assert result.output_text == recorded.result.output_text


class TestStepping:
    def test_step_into_advances_one_bci(self, session):
        session.add_breakpoint("Teller.run()V", bci=0)
        session.resume()
        trail = []
        for _ in range(3):
            assert session.step() == "step"
            top = session.where()[0]
            trail.append(top.bci)
        assert trail == [1, 2, 3]

    def test_step_over_skips_callee(self, recorded):
        src_session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        src_session.add_breakpoint("Main.main()V", bci=0)
        src_session.resume()
        depth_before = len(src_session.current_thread().frames)
        status = src_session.step(mode="over")
        assert status in ("step", "breakpoint")
        assert len(src_session.current_thread().frames) <= depth_before

    def test_locals_visible(self, session):
        session.add_breakpoint("Teller.run()V", bci=2)
        session.resume()
        locals_ = session.read_locals()
        assert isinstance(locals_, list) and locals_


class TestInspection:
    def test_static_read_midway(self, session):
        session.add_breakpoint("Teller.run()V", bci=0)
        session.resume()
        balance = session.read_static("Main", "balance")
        assert balance == 0  # nothing deposited yet at first teller entry

    def test_threads_viewer(self, session):
        session.add_breakpoint("Teller.run()V", bci=0)
        session.resume()
        infos = session.threads()
        assert any(t.frames for t in infos)

    def test_line_number_of_via_tool_vm(self, session):
        session.add_breakpoint("Teller.run()V", bci=0)
        session.resume()
        rm = session.resolve_method("Teller.run()V")
        line = session.line_number_of(rm.method_id, 0)
        assert line == rm.mdef.line_table[0]


class TestPerturbationFreedom:
    def test_debugged_replay_is_faithful(self, recorded):
        session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        session.add_breakpoint("Teller.run()V", bci=4)
        stops = 0
        while session.resume() == "breakpoint" and stops < 5:
            session.read_static("Main", "balance")
            session.where()
            session.threads()
            stops += 1
        session.clear_breakpoints()
        result = session.run_to_completion()
        assert stops == 5
        report = compare_runs(recorded.result, result)
        assert report.faithful, report.detail

    def test_plain_and_debugged_replays_agree(self, recorded):
        plain = replay(racy_bank(), recorded.trace, config=CFG)
        session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        session.add_breakpoint("Teller.run()V", bci=0)
        session.resume()
        session.where()
        session.clear_breakpoints()
        debugged = session.run_to_completion()
        assert plain.behavior_key() == debugged.behavior_key()

    def test_in_process_reflection_breaks_replay(self, recorded):
        """The contrast the paper draws in §3: running reflective queries
        *inside* the application VM (allocating, counting yield points)
        destroys the symmetry and the replay diverges."""
        from repro.core.controller import MODE_REPLAY, DejaVu
        from repro.api import build_vm
        from repro.vm.errors import ReplayDivergenceError

        vm = build_vm(racy_bank(), CFG)
        dejavu = DejaVu(vm, MODE_REPLAY, trace=recorded.trace)
        controller = DebugController()
        vm.engine.debug = controller
        vm.start("Main.main()V")
        rm = vm.loader.resolve_method_any("Teller.run()V")
        controller.add_breakpoint(rm.method_id, 0)
        vm.engine.run()
        assert controller.paused
        # in-process "reflection": allocate a query result in the app heap
        vm.loader.make_string("who is waiting on what?")
        controller.resume()
        controller.clear_breakpoints()
        with pytest.raises(ReplayDivergenceError):
            vm.engine.run()
            vm.finish()


class TestProtocolAndFrontend:
    def test_full_tcp_session(self, recorded):
        session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        server = DebuggerServer(Debugger(session)).start()
        try:
            with DebuggerClient(server.address) as client:
                bp = client.request("break", method="Teller.run()V", bci=0)
                assert bp["bci"] == 0
                status = client.request("cont")
                assert status["status"] == "breakpoint"
                bt = client.request("backtrace")
                assert bt[0]["method"] == "Teller.run"
                threads = client.request("threads")
                assert any(t["state"] == "RUNNING" for t in threads)
                listing = client.request("source", method="Teller.run()V")
                assert listing["code"][0]["bci"] == 0
                info = client.request("info")
                assert info["paused"] is True
                fin = client.request("finish")
                assert fin["output"] == recorded.result.output_text
        finally:
            server.stop()

    def test_unknown_command_is_error(self, recorded):
        session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        server = DebuggerServer(Debugger(session)).start()
        try:
            with DebuggerClient(server.address) as client:
                with pytest.raises(VMError, match="unknown command"):
                    client.request("selfdestruct")
                with pytest.raises(VMError, match="bad arguments"):
                    client.request("cont", bogus=1)
                # server survives errors
                assert client.request("info")["finished"] is False
        finally:
            server.stop()

    def test_inspect_tree_rendering(self, recorded):
        session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        dbg = Debugger(session)
        dbg.break_("Main.main()V", bci=3)
        dbg.cont()
        tree = dbg.print_static("Main", "tellers")
        # may be null or an array node depending on progress; both render
        assert "value" in tree
        out = dbg.finish()
        assert out["status"] == "done"

    def test_protocol_encoding_roundtrip(self):
        from repro.debugger.protocol import decode, encode

        msg = {"id": 1, "cmd": "break", "args": {"method": "X.y()V"}}
        assert decode(encode(msg).strip()) == msg
