"""The ClassBuilder / MethodBuilder DSL."""

import pytest

from repro.vm.builder import ClassBuilder
from repro.vm.bytecode import Op
from repro.vm.errors import VMError


class TestMethodBuilder:
    def test_fluent_chaining(self):
        cb = ClassBuilder("T")
        m = cb.method("f", "(I)I", static=True)
        m.iload(0).iconst(1).iadd().ireturn()
        cd = cb.build()
        code = cd.method_def("f(I)I").code
        assert [i.op for i in code] == [Op.ILOAD, Op.ICONST, Op.IADD, Op.IRETURN]

    def test_labels_forward_and_backward(self):
        cb = ClassBuilder("T")
        m = cb.method("f", "()V", static=True)
        m.label("top").iconst(1).ifne("done").goto("top").label("done").ret()
        cd = cb.build()
        code = cd.method_def("f()V").code
        assert code[1].arg == 3  # ifne -> 'done' (the ret)
        assert code[2].arg == 0  # goto -> 'top'

    def test_duplicate_label_rejected(self):
        cb = ClassBuilder("T")
        m = cb.method("f", "()V", static=True)
        m.label("x")
        with pytest.raises(VMError):
            m.label("x")

    def test_undefined_label_rejected_at_build(self):
        cb = ClassBuilder("T")
        cb.method("f", "()V", static=True).goto("nope")
        with pytest.raises(VMError):
            cb.build()

    def test_max_locals_from_params_and_slots(self):
        cb = ClassBuilder("T")
        m = cb.method("f", "(II)V", static=True)
        m.iconst(5).istore(7).ret()
        cd = cb.build()
        assert cd.method_def("f(II)V").max_locals == 8

    def test_instance_method_counts_this(self):
        cb = ClassBuilder("T")
        cb.method("f", "()V").ret()
        cd = cb.build()
        assert cd.method_def("f()V").max_locals == 1

    def test_ldc_interns(self):
        cb = ClassBuilder("T")
        m = cb.method("f", "()V", static=True)
        m.ldc("hello").pop().ldc("hello").pop().ldc("world").pop().ret()
        cd = cb.build()
        assert cd.strings == ["hello", "world"]

    def test_line_tracking(self):
        cb = ClassBuilder("T")
        m = cb.method("f", "()V", static=True)
        m.line(10).iconst(1).pop().line(20).ret()
        cd = cb.build()
        lt = cd.method_def("f()V").line_table
        assert lt[0] == 10 and lt[1] == 10 and lt[2] == 20

    def test_here_reports_next_index(self):
        cb = ClassBuilder("T")
        m = cb.method("f", "()V", static=True)
        assert m.here == 0
        m.iconst(1)
        assert m.here == 1
        m.pop().ret()
        cb.build()


class TestClassBuilder:
    def test_duplicate_field_rejected(self):
        cb = ClassBuilder("T")
        cb.field("x", "I").field("x", "I")
        cb.method("f", "()V", static=True).ret()
        with pytest.raises(VMError):
            cb.build()

    def test_duplicate_method_key_rejected(self):
        cb = ClassBuilder("T")
        cb.method("f", "()V", static=True).ret()
        cb.method("f", "()V", static=True).ret()
        with pytest.raises(VMError):
            cb.build()

    def test_overloads_allowed(self):
        cb = ClassBuilder("T")
        cb.method("f", "()V", static=True).ret()
        cb.method("f", "(I)V", static=True).ret()
        cd = cb.build()
        assert cd.method_def("f()V") is not cd.method_def("f(I)V")

    def test_build_is_idempotent(self):
        cb = ClassBuilder("T")
        cb.method("f", "()V", static=True).ret()
        assert cb.build() is cb.build()

    def test_empty_body_rejected(self):
        cb = ClassBuilder("T")
        cb.method("f", "()V", static=True)
        with pytest.raises(VMError):
            cb.build()

    def test_native_methods_have_no_code(self):
        cb = ClassBuilder("T")
        cb.native_method("n", "()I")
        cd = cb.build()
        assert cd.method_def("n()I").native
        assert cd.method_def("n()I").code == []

    def test_object_has_no_super(self):
        assert ClassBuilder("Object", super_name=None).build().super_name is None
