"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.api import GuestProgram, build_vm
from repro.vm.machine import _DEFAULT
from repro.vm import VirtualMachine, VMConfig, assemble
from repro.vm.machine import Environment
from repro.vm.timerdev import FixedTimer, SeededJitterClock, SeededJitterTimer

#: small-but-comfortable heap for unit tests
TEST_CONFIG = VMConfig(semispace_words=40_000)
#: heap sized to force several collections in allocation-heavy tests
SMALL_HEAP = VMConfig(semispace_words=9_000)


def run_source(
    source: str,
    main: str = "Main.main()V",
    *,
    config: VMConfig | None = None,
    timer=_DEFAULT,
    clock=None,
    env: Environment | None = None,
    natives=None,
):
    """Assemble, run, return the RunResult (fresh VM)."""
    program = GuestProgram.from_source(source, main=main, natives=natives)
    vm = build_vm(
        program,
        config or TEST_CONFIG,
        timer=timer,
        clock=clock,
        env=env,
    )
    return vm.run(program.main)


def make_vm(source: str | None = None, *, config: VMConfig | None = None, **kwargs) -> VirtualMachine:
    vm = VirtualMachine(config or TEST_CONFIG, **kwargs)
    if source is not None:
        vm.declare(assemble(source))
    return vm


def jitter_knobs(seed: int, lo: int = 40, hi: int = 200) -> dict:
    """Standard non-determinism sources for record/replay tests."""
    return dict(
        timer=SeededJitterTimer(seed, lo, hi),
        clock=SeededJitterClock(seed),
        env=Environment(seed=seed),
    )


@pytest.fixture
def vm() -> VirtualMachine:
    return VirtualMachine(TEST_CONFIG, timer=FixedTimer(1000))
