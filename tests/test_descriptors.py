"""Type descriptors and method signatures."""

import pytest

from repro.vm.descriptors import (
    DescriptorError,
    Signature,
    class_name,
    element_type,
    is_array,
    is_reference,
    object_desc,
    parse_signature,
    validate,
)


class TestPredicates:
    def test_int_is_not_reference(self):
        assert not is_reference("I")

    def test_class_is_reference(self):
        assert is_reference("LFoo;")

    def test_array_is_reference(self):
        assert is_reference("[I")
        assert is_reference("[LFoo;")

    def test_is_array(self):
        assert is_array("[I")
        assert is_array("[[I")
        assert not is_array("LFoo;")
        assert not is_array("I")


class TestAccessors:
    def test_element_type(self):
        assert element_type("[I") == "I"
        assert element_type("[LFoo;") == "LFoo;"
        assert element_type("[[I") == "[I"

    def test_element_type_rejects_nonarray(self):
        with pytest.raises(DescriptorError):
            element_type("I")

    def test_class_name(self):
        assert class_name("LFoo;") == "Foo"

    def test_class_name_rejects(self):
        with pytest.raises(DescriptorError):
            class_name("[I")

    def test_object_desc_roundtrip(self):
        assert class_name(object_desc("Bar")) == "Bar"


class TestValidate:
    @pytest.mark.parametrize("desc", ["I", "LFoo;", "[I", "[[LFoo;", "[[[I"])
    def test_accepts(self, desc):
        assert validate(desc) == desc

    @pytest.mark.parametrize("desc", ["", "X", "L;", "LFoo", "[", "II", "LFoo;I"])
    def test_rejects(self, desc):
        with pytest.raises(DescriptorError):
            validate(desc)

    def test_void_needs_permission(self):
        with pytest.raises(DescriptorError):
            validate("V")
        assert validate("V", allow_void=True) == "V"


class TestSignatures:
    def test_empty(self):
        sig = parse_signature("()V")
        assert sig.params == ()
        assert sig.ret == "V"
        assert sig.nargs == 0

    def test_mixed_params(self):
        sig = parse_signature("(I[ILBank;)I")
        assert sig.params == ("I", "[I", "LBank;")
        assert sig.ret == "I"

    def test_nested_arrays(self):
        sig = parse_signature("([[LFoo;)[I")
        assert sig.params == ("[[LFoo;",)
        assert sig.ret == "[I"

    def test_spell_roundtrip(self):
        for text in ["()V", "(I)I", "(I[ILBank;)V", "([[I)[LFoo;"]:
            assert parse_signature(text).spell() == text

    @pytest.mark.parametrize(
        "text", ["I", "(I", "(V)V", "()", "()X", "(LFoo)V", "(I)VV"]
    )
    def test_rejects(self, text):
        with pytest.raises(DescriptorError):
            parse_signature(text)

    def test_signature_is_hashable_value(self):
        assert parse_signature("(I)V") == Signature(("I",), "V")
        assert hash(parse_signature("(I)V")) == hash(Signature(("I",), "V"))
