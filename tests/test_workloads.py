"""Workload invariants: each guest program computes what it claims."""

import pytest

from repro.api import build_vm
from repro.vm import SeededJitterTimer
from repro.vm.machine import Environment, VMConfig
from repro.vm.timerdev import SeededJitterClock
from repro.workloads import (
    ALL_WORKLOADS,
    figure1_ab,
    figure1_cd,
    gc_churn,
    philosophers,
    producer_consumer,
    racy_bank,
    server,
    sorter,
    synced_bank,
)

CFG = VMConfig(semispace_words=80_000)


def run(program, seed=0, lo=40, hi=200):
    vm = build_vm(
        program,
        CFG,
        timer=SeededJitterTimer(seed, lo, hi),
        clock=SeededJitterClock(seed),
        env=Environment(seed=seed),
    )
    return vm.run(program.main)


class TestFigure1:
    def test_ab_outcomes_are_8_or_0(self):
        seen = set()
        for seed in range(30):
            result = run(figure1_ab(), seed, 5, 120)
            assert result.output_text in ("8", "0")
            seen.add(result.output_text)
        assert "8" in seen  # the common case must appear

    def test_cd_wait_branch_vs_skip(self):
        outcomes = set()
        for seed in range(30):
            result = run(figure1_cd(), seed, 5, 120)
            if result.deadlocked:
                outcomes.add("deadlock")
            else:
                outcomes.add(result.output_text)
        # C (wait, then x=1 -> 101) and D (no wait, x still 0 -> 100)
        assert outcomes & {"100", "101"}
        assert len(outcomes) >= 2


class TestBank:
    def test_synced_bank_always_exact(self):
        for seed in range(4):
            result = run(synced_bank(tellers=3, deposits=25), seed, 20, 90)
            assert result.output_text == "balance=75"

    def test_racy_bank_loses_updates(self):
        outputs = {run(racy_bank(), seed, 20, 90).output_text for seed in range(6)}
        values = {int(o.split("=")[1]) for o in outputs}
        assert any(v < 120 for v in values)  # updates actually lost
        assert all(v <= 120 for v in values)  # never overcounts

    def test_parameterisation(self):
        result = run(synced_bank(tellers=2, deposits=10), 0)
        assert result.output_text == "balance=20"


class TestProducerConsumer:
    def test_sum_is_schedule_independent(self):
        expected = sum(range(2 * 30))  # producers*items sequence numbers
        for seed in (0, 5, 11):
            result = run(producer_consumer(), seed, 20, 120)
            assert result.output_text == f"sum={expected}"
            assert not result.deadlocked

    def test_small_capacity_forces_waits(self):
        program = producer_consumer(producers=2, consumers=1, items_per_producer=10, capacity=1)
        result = run(program, 3, 20, 120)
        assert result.output_text == f"sum={sum(range(20))}"


class TestPhilosophers:
    def test_all_meals_eaten_no_deadlock(self):
        for seed in (0, 7):
            result = run(philosophers(n=4, rounds=6), seed, 30, 150)
            assert result.output_text == "meals=24"
            assert not result.deadlocked


class TestServer:
    def test_all_requests_served(self):
        result = run(server(n_workers=3, n_requests=25, seed=5), 5)
        assert "served=25" in result.output_text
        assert result.output_text.count("resp:") == 25

    def test_callback_stats_accumulated(self):
        result = run(server(n_workers=2, n_requests=24, seed=5), 5)
        # every 8th recv issues a callback: 3 callbacks x 8 packets
        assert "packets=24" in result.output_text


class TestSorter:
    def test_chunks_actually_sorted(self):
        program = sorter(n_workers=3, chunk=32)
        vm = build_vm(program, CFG, timer=SeededJitterTimer(1, 40, 200))
        vm.run(program.main)
        rc, slot = vm.loader.resolve_static_field("Main.data")
        data_addr = vm.om.get_field(rc.statics_addr, slot.offset)
        values = [vm.om.array_get(data_addr, i) for i in range(vm.om.array_length(data_addr))]
        for w in range(3):
            chunk = values[w * 32 : (w + 1) * 32]
            assert chunk == sorted(chunk)

    def test_checksum_schedule_independent(self):
        outs = {run(sorter(), seed, 30, 150).output_text for seed in (1, 2, 3)}
        assert len(outs) == 1


class TestGcChurn:
    def test_depth_sum_deterministic_component(self):
        result = run(gc_churn(iters=70, depth=30), 2)
        # depthSum: both threads recurse every 7th iteration, full depth each
        assert "depthSum=600" in result.output_text

    def test_hashes_component_present(self):
        result = run(gc_churn(), 2)
        assert "hashes=" in result.output_text


class TestRegistry:
    def test_all_workloads_factory_map(self):
        assert len(ALL_WORKLOADS) == 10
        for name, factory in ALL_WORKLOADS.items():
            program = factory()
            assert program.classdefs, name

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_every_workload_completes_without_traps(self, name):
        result = run(ALL_WORKLOADS[name](), 21, 30, 150)
        assert not result.traps, (name, result.traps)
