"""Debugger TCP transport error paths, driven over raw sockets.

The frontend tests exercise the happy path through ``DebuggerClient``;
these go underneath it: frames split across sends, oversized length
prefixes, garbage on the wire, protocol-shaped requests the dispatcher
must reject, and connections that die mid-response.  The invariant
throughout is that the *server* survives — a broken frontend must never
take down the replay it is inspecting.
"""

import socket
import time

import pytest

from repro.api import record
from repro.debugger import Debugger, DebuggerClient, DebuggerServer, ReplaySession
from repro.debugger.protocol import (
    LEN_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    TransportError,
    decode,
    encode,
    frame,
)
from repro.vm import SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank

CFG = VMConfig(semispace_words=60_000)


@pytest.fixture
def server():
    recorded = record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))
    session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
    srv = DebuggerServer(Debugger(session)).start()
    yield srv
    srv.stop()


def _connect(srv) -> socket.socket:
    return socket.create_connection(srv.address, timeout=5.0)


def _recv_frame(sock: socket.socket) -> dict:
    decoder = FrameDecoder()
    frames = []
    while not frames:
        chunk = sock.recv(4096)
        assert chunk, "server closed the connection"
        frames = decoder.feed(chunk)
    return decode(frames[0])


def _roundtrip(sock: socket.socket, message: dict) -> dict:
    sock.sendall(frame(message))
    return _recv_frame(sock)


def _send_raw(sock: socket.socket, raw: bytes) -> dict:
    """Frame arbitrary (possibly non-JSON) payload bytes and read the reply."""
    sock.sendall(len(raw).to_bytes(LEN_BYTES, "big") + raw)
    return _recv_frame(sock)


class TestFrameDecoder:
    def test_frame_split_across_two_feeds(self):
        decoder = FrameDecoder()
        wire = frame({"id": 1, "cmd": "info", "args": {}})
        cut = len(wire) // 2
        assert decoder.feed(wire[:cut]) == []
        payloads = decoder.feed(wire[cut:])
        assert [decode(p) for p in payloads] == [{"id": 1, "cmd": "info", "args": {}}]
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_feed(self):
        decoder = FrameDecoder()
        wire = b"".join(frame({"id": i}) for i in range(5))
        assert [decode(p)["id"] for p in decoder.feed(wire)] == [0, 1, 2, 3, 4]

    def test_byte_at_a_time_delivery(self):
        decoder = FrameDecoder()
        wire = frame({"id": 9, "cmd": "ping"})
        got = []
        for i in range(len(wire)):
            got.extend(decoder.feed(wire[i:i + 1]))
        assert decode(got[0])["id"] == 9

    def test_oversized_length_prefix_rejected_without_buffering(self):
        decoder = FrameDecoder()
        huge = (MAX_FRAME_BYTES + 1).to_bytes(LEN_BYTES, "big")
        with pytest.raises(FrameError):
            decoder.feed(huge + b"x" * 100)
        # the bounded read: nothing was accumulated beyond the bad prefix
        assert decoder.pending_bytes <= LEN_BYTES + 100

    def test_garbage_parses_as_implausible_length(self):
        # random ASCII bytes decode to a length around 2**30 — detected
        # up front instead of waiting for gigabytes that never arrive
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(b"GET / HTTP/1.1\r\n")


class TestMalformedInput:
    def test_non_json_payload(self, server):
        with _connect(server) as sock:
            resp = _send_raw(sock, b"this is not json {{{")
            assert resp == {"ok": False, "error": "bad json"}

    def test_truncated_json_payload(self, server):
        with _connect(server) as sock:
            resp = _send_raw(sock, b'{"id": 1, "cmd": "info"')
            assert resp == {"ok": False, "error": "bad json"}

    def test_json_but_not_an_object_is_handled(self, server):
        # a bare array is valid JSON but not a protocol message; it must
        # be rejected as bad json, not crash the serve loop
        with _connect(server) as sock:
            resp = _send_raw(sock, b"[1, 2, 3]")
            assert resp["ok"] is False

    def test_server_usable_after_bad_payload(self, server):
        with _connect(server) as sock:
            assert _send_raw(sock, b"\x00\xff garbage")["ok"] is False
            resp = _roundtrip(sock, {"id": 2, "cmd": "info", "args": {}})
            assert resp["ok"] is True
            assert resp["result"]["finished"] is False

    def test_oversized_length_prefix_closes_connection(self, server):
        with _connect(server) as sock:
            sock.sendall((MAX_FRAME_BYTES * 4).to_bytes(LEN_BYTES, "big"))
            # best-effort error frame, then the server closes this
            # connection (the stream cannot be resynchronised)
            resp = _recv_frame(sock)
            assert resp["ok"] is False
            assert "cap" in resp["error"]
            assert sock.recv(4096) == b""
        # ... but the serve loop is still alive for the next client
        with DebuggerClient(server.address) as client:
            assert client.request("info")["finished"] is False
        assert server.frame_errors == 1


class TestBadRequests:
    def test_unknown_command(self, server):
        with _connect(server) as sock:
            resp = _roundtrip(sock, {"id": 3, "cmd": "selfdestruct", "args": {}})
            assert resp["ok"] is False
            assert "unknown command" in resp["error"]
            assert resp["id"] == 3  # the error is correlated to the request

    def test_missing_cmd_field(self, server):
        with _connect(server) as sock:
            resp = _roundtrip(sock, {"id": 4})
            assert resp["ok"] is False
            assert "unknown command" in resp["error"]

    def test_unexpected_argument(self, server):
        with _connect(server) as sock:
            resp = _roundtrip(sock, {"id": 5, "cmd": "cont", "args": {"warp": 9}})
            assert resp["ok"] is False
            assert "bad arguments" in resp["error"]

    def test_handler_exception_reported_not_fatal(self, server):
        with _connect(server) as sock:
            resp = _roundtrip(
                sock, {"id": 6, "cmd": "break", "args": {"method": "No.such()V"}}
            )
            assert resp["ok"] is False
            assert "error" in resp
            # and the session is still alive
            assert _roundtrip(sock, {"id": 7, "cmd": "info", "args": {}})["ok"]


class TestDisconnects:
    def test_disconnect_mid_session_then_reconnect(self, server):
        with _connect(server) as sock:
            resp = _roundtrip(
                sock,
                {"id": 1, "cmd": "break", "args": {"method": "Teller.run()V", "bci": 0}},
            )
            assert resp["ok"] is True
            # vanish without a goodbye, mid-session
        with DebuggerClient(server.address) as client:
            # server went back to accepting; debugger state survived
            status = client.request("cont")
            assert status["status"] == "breakpoint"

    def test_disconnect_with_partial_frame_in_flight(self, server):
        with _connect(server) as sock:
            wire = frame({"id": 1, "cmd": "info", "args": {}})
            sock.sendall(wire[: len(wire) - 3])  # frame never completes, then gone
        with DebuggerClient(server.address) as client:
            assert client.request("info")["finished"] is False

    def test_client_vanishes_mid_response(self, server):
        # a response the server cannot deliver (peer reset the socket)
        # must not crash the serve loop
        with _connect(server) as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            b"\x01\x00\x00\x00\x00\x00\x00\x00")  # RST on close
            sock.sendall(frame({"id": 1, "cmd": "info", "args": {}}))
        time.sleep(0.1)  # let the server hit the dead socket
        with DebuggerClient(server.address) as client:
            assert client.request("info")["finished"] is False

    def test_client_reports_server_shutdown(self):
        recorded = record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))
        session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        srv = DebuggerServer(Debugger(session)).start()
        client = DebuggerClient(srv.address)
        try:
            assert client.request("info")["paused"] is False
            srv.stop()
            with pytest.raises(TransportError):
                client.request("info")
        finally:
            client.close()
            srv.stop()


class TestClientHardening:
    def test_ping_keepalive(self, server):
        with DebuggerClient(server.address) as client:
            assert client.ping() is True

    def test_per_request_timeout_raises_transport_error(self, server):
        # connect directly to a socket that will never answer: a bound,
        # listening socket whose backlog accepts but nobody serves
        quiet = socket.socket()
        quiet.bind(("127.0.0.1", 0))
        quiet.listen(1)
        try:
            client = DebuggerClient(quiet.getsockname(), timeout=0.2)
            with pytest.raises(TransportError, match="timed out"):
                client.request("info")
            client.close()
        finally:
            quiet.close()

    def test_connect_retry_gives_up_with_typed_error(self):
        # grab a port with no listener
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        addr = probe.getsockname()
        probe.close()
        start = time.monotonic()
        with pytest.raises(TransportError, match="could not connect"):
            DebuggerClient.connect(addr, attempts=3, base_delay=0.01, max_delay=0.05)
        # backoff actually waited between attempts
        assert time.monotonic() - start >= 0.01

    def test_reconnect_after_backoff_succeeds(self):
        recorded = record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))
        session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        # reserve an address, but start the server only after a delay —
        # the client's backoff loop must ride it out and then connect
        placeholder = socket.socket()
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        placeholder.bind(("127.0.0.1", 0))
        host, port = placeholder.getsockname()
        placeholder.close()

        import threading

        srv_box: list[DebuggerServer] = []

        def bring_up():
            time.sleep(0.15)
            srv_box.append(DebuggerServer(Debugger(session), host=host, port=port).start())

        t = threading.Thread(target=bring_up)
        t.start()
        try:
            client = DebuggerClient.connect(
                (host, port), attempts=10, base_delay=0.05, max_delay=0.2
            )
            with client:
                assert client.ping() is True
                assert client.request("info")["finished"] is False
        finally:
            t.join()
            if srv_box:
                srv_box[0].stop()


class TestEncodeFrameSymmetry:
    def test_frame_roundtrip(self):
        msg = {"id": 42, "cmd": "step", "args": {"mode": "into"}}
        wire = frame(msg)
        assert int.from_bytes(wire[:LEN_BYTES], "big") == len(wire) - LEN_BYTES
        assert decode(FrameDecoder().feed(wire)[0]) == msg

    def test_encode_is_compact_json(self):
        assert b"\n" not in encode({"id": 1, "cmd": "info"})
