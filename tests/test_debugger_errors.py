"""Debugger TCP protocol error paths, driven over raw sockets.

The frontend tests exercise the happy path through ``DebuggerClient``;
these go underneath it: garbage on the wire, protocol-shaped requests the
dispatcher must reject, and connections that die mid-session.  The
invariant throughout is that the *server* survives — a broken frontend
must never take down the replay it is inspecting.
"""

import json
import socket

import pytest

from repro.api import record
from repro.debugger import Debugger, DebuggerClient, DebuggerServer, ReplaySession
from repro.vm import SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank

CFG = VMConfig(semispace_words=60_000)


@pytest.fixture
def server():
    recorded = record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))
    session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
    srv = DebuggerServer(Debugger(session)).start()
    yield srv
    srv.stop()


def _connect(srv) -> socket.socket:
    return socket.create_connection(srv.address, timeout=5.0)


def _send_line(sock: socket.socket, raw: bytes) -> dict:
    sock.sendall(raw + b"\n")
    buf = b""
    while b"\n" not in buf:
        chunk = sock.recv(4096)
        assert chunk, "server closed the connection"
        buf += chunk
    line, _, _ = buf.partition(b"\n")
    return json.loads(line.decode())


class TestMalformedInput:
    def test_non_json_line(self, server):
        with _connect(server) as sock:
            resp = _send_line(sock, b"this is not json {{{")
            assert resp == {"ok": False, "error": "bad json"}

    def test_truncated_json(self, server):
        with _connect(server) as sock:
            resp = _send_line(sock, b'{"id": 1, "cmd": "info"')
            assert resp == {"ok": False, "error": "bad json"}

    def test_json_but_not_an_object_is_handled(self, server):
        # a bare array is valid JSON but not a protocol message; it must
        # be rejected as bad json, not crash the serve loop
        with _connect(server) as sock:
            resp = _send_line(sock, b"[1, 2, 3]")
            assert resp["ok"] is False

    def test_blank_lines_ignored(self, server):
        with _connect(server) as sock:
            sock.sendall(b"\n   \n")
            resp = _send_line(sock, b'{"id": 1, "cmd": "info", "args": {}}')
            assert resp["ok"] is True and resp["id"] == 1

    def test_server_usable_after_garbage(self, server):
        with _connect(server) as sock:
            assert _send_line(sock, b"\x00\xff garbage")["ok"] is False
            resp = _send_line(sock, b'{"id": 2, "cmd": "info", "args": {}}')
            assert resp["ok"] is True
            assert resp["result"]["finished"] is False


class TestBadRequests:
    def test_unknown_command(self, server):
        with _connect(server) as sock:
            resp = _send_line(sock, b'{"id": 3, "cmd": "selfdestruct", "args": {}}')
            assert resp["ok"] is False
            assert "unknown command" in resp["error"]
            assert resp["id"] == 3  # the error is correlated to the request

    def test_missing_cmd_field(self, server):
        with _connect(server) as sock:
            resp = _send_line(sock, b'{"id": 4}')
            assert resp["ok"] is False
            assert "unknown command" in resp["error"]

    def test_unexpected_argument(self, server):
        with _connect(server) as sock:
            resp = _send_line(sock, b'{"id": 5, "cmd": "cont", "args": {"warp": 9}}')
            assert resp["ok"] is False
            assert "bad arguments" in resp["error"]

    def test_handler_exception_reported_not_fatal(self, server):
        with _connect(server) as sock:
            resp = _send_line(
                sock, b'{"id": 6, "cmd": "break", "args": {"method": "No.such()V"}}'
            )
            assert resp["ok"] is False
            assert "error" in resp
            # and the session is still alive
            assert _send_line(sock, b'{"id": 7, "cmd": "info", "args": {}}')["ok"]


class TestDisconnects:
    def test_disconnect_mid_session_then_reconnect(self, server):
        with _connect(server) as sock:
            resp = _send_line(
                sock,
                b'{"id": 1, "cmd": "break", "args": {"method": "Teller.run()V", "bci": 0}}',
            )
            assert resp["ok"] is True
            # vanish without a goodbye, mid-session
        with DebuggerClient(server.address) as client:
            # server went back to accepting; debugger state survived
            status = client.request("cont")
            assert status["status"] == "breakpoint"

    def test_disconnect_with_partial_line_in_flight(self, server):
        with _connect(server) as sock:
            sock.sendall(b'{"id": 1, "cmd": "inf')  # no newline, then gone
        with DebuggerClient(server.address) as client:
            assert client.request("info")["finished"] is False

    def test_client_reports_server_shutdown(self):
        recorded = record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))
        session = ReplaySession(racy_bank(), recorded.trace, config=CFG)
        srv = DebuggerServer(Debugger(session)).start()
        client = DebuggerClient(srv.address)
        try:
            assert client.request("info")["paused"] is False
            srv.stop()
            from repro.vm.errors import VMError

            with pytest.raises(VMError):
                client.request("info")
        finally:
            client.close()
            srv.stop()
