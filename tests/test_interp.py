"""Engine semantics: every opcode family, dispatch, traps."""

import pytest

from repro.vm import words
from tests.conftest import run_source


def run_expr(body: str, **kwargs):
    """Run a main that leaves printing to the body; return output text."""
    src = f""".class Main
.method static main ()V
{body}
    return
.end
"""
    return run_source(src, **kwargs)


def eval_int(expr_body: str) -> int:
    """Body must leave one int on the stack; we print and parse it."""
    src = f""".class Main
.method static main ()V
{expr_body}
    invokestatic System.printInt(I)V
    return
.end
"""
    result = run_source(src)
    assert not result.traps, result.traps
    return int(result.output_text)


class TestArithmetic:
    CASES = [
        ("iadd", 7, 5, words.iadd),
        ("iadd", words.I32_MAX, 1, words.iadd),
        ("isub", 3, 10, words.isub),
        ("imul", 123456, 654321, words.imul),
        ("idiv", -7, 2, words.idiv),
        ("irem", -7, 3, words.irem),
        ("ishl", 3, 30, words.ishl),
        ("ishr", -64, 3, words.ishr),
        ("iushr", -1, 28, words.iushr),
        ("iand", 0b1100, 0b1010, words.iand),
        ("ior", 0b1100, 0b1010, words.ior),
        ("ixor", 0b1100, 0b1010, words.ixor),
    ]

    @pytest.mark.parametrize("op,a,b,ref", CASES)
    def test_binary_op(self, op, a, b, ref):
        got = eval_int(f"    iconst {a}\n    iconst {b}\n    {op}")
        assert got == ref(a, b)

    def test_ineg(self):
        assert eval_int("    iconst 5\n    ineg") == -5
        assert eval_int(f"    iconst {words.I32_MIN}\n    ineg") == words.I32_MIN

    def test_iinc(self):
        assert eval_int("    iconst 10\n    istore 0\n    iinc 0 -3\n    iload 0") == 7

    def test_div_by_zero_traps(self):
        result = run_expr("    iconst 1\n    iconst 0\n    idiv\n    pop")
        assert result.traps and result.traps[0][1] == "ArithmeticDivByZero"

    def test_rem_by_zero_traps(self):
        result = run_expr("    iconst 1\n    iconst 0\n    irem\n    pop")
        assert result.traps[0][1] == "ArithmeticDivByZero"


class TestStackOps:
    def test_dup(self):
        assert eval_int("    iconst 21\n    dup\n    iadd") == 42

    def test_swap(self):
        assert eval_int("    iconst 1\n    iconst 10\n    swap\n    isub") == 9

    def test_pop(self):
        assert eval_int("    iconst 42\n    iconst 99\n    pop") == 42


class TestControlFlow:
    @pytest.mark.parametrize(
        "cond,val,taken",
        [
            ("ifeq", 0, True),
            ("ifeq", 1, False),
            ("ifne", 0, False),
            ("iflt", -1, True),
            ("ifle", 0, True),
            ("ifgt", 1, True),
            ("ifge", -1, False),
        ],
    )
    def test_unary_branches(self, cond, val, taken):
        got = eval_int(
            f"""
    iconst {val}
    {cond} yes
    iconst 0
    goto out
yes:
    iconst 1
out:
"""
        )
        assert got == (1 if taken else 0)

    @pytest.mark.parametrize(
        "cond,a,b,taken",
        [
            ("if_icmpeq", 3, 3, True),
            ("if_icmpne", 3, 3, False),
            ("if_icmplt", 2, 3, True),
            ("if_icmple", 3, 3, True),
            ("if_icmpgt", 3, 2, True),
            ("if_icmpge", 2, 3, False),
        ],
    )
    def test_binary_branches(self, cond, a, b, taken):
        got = eval_int(
            f"""
    iconst {a}
    iconst {b}
    {cond} yes
    iconst 0
    goto out
yes:
    iconst 1
out:
"""
        )
        assert got == (1 if taken else 0)

    def test_ifnull_ifnonnull(self):
        got = eval_int(
            """
    aconst_null
    ifnull yes
    iconst 0
    goto out
yes:
    iconst 1
out:
"""
        )
        assert got == 1

    def test_acmp(self):
        got = eval_int(
            """
    new Object
    astore 0
    aload 0
    aload 0
    if_acmpeq yes
    iconst 0
    goto out
yes:
    iconst 1
out:
"""
        )
        assert got == 1

    def test_loop_sum(self):
        got = eval_int(
            """
    iconst 0
    istore 0
    iconst 0
    istore 1
top:
    iload 0
    iconst 100
    if_icmpgt done
    iload 1
    iload 0
    iadd
    istore 1
    iinc 0 1
    goto top
done:
    iload 1
"""
        )
        assert got == 5050


class TestObjectsAndArrays:
    def test_fields_roundtrip(self):
        src = """.class Box
.field v I
.class Main
.method static main ()V
    new Box
    astore 0
    aload 0
    iconst 77
    putfield Box.v I
    aload 0
    getfield Box.v I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "77"

    def test_statics_roundtrip(self):
        src = """.class Main
.field static n I
.method static main ()V
    iconst 5
    putstatic Main.n I
    getstatic Main.n I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "5"

    def test_int_array(self):
        got = eval_int(
            """
    iconst 4
    newarray
    astore 0
    aload 0
    iconst 2
    iconst 9
    iastore
    aload 0
    iconst 2
    iaload
    aload 0
    arraylength
    iadd
"""
        )
        assert got == 13

    def test_ref_array(self):
        got = eval_int(
            """
    iconst 2
    anewarray LObject;
    astore 0
    aload 0
    iconst 1
    new Object
    aastore
    aload 0
    iconst 1
    aaload
    ifnonnull yes
    iconst 0
    goto out
yes:
    iconst 1
out:
"""
        )
        assert got == 1

    @pytest.mark.parametrize(
        "body,kind",
        [
            ("    aconst_null\n    getfield String.chars [I\n    pop", "NullPointer"),
            ("    aconst_null\n    iconst 0\n    iaload\n    pop", "NullPointer"),
            ("    aconst_null\n    arraylength\n    pop", "NullPointer"),
            ("    iconst 1\n    newarray\n    iconst 5\n    iaload\n    pop", "ArrayBounds"),
            ("    iconst -2\n    newarray\n    pop", "NegativeArraySize"),
            ("    aconst_null\n    monitorenter", "NullPointer"),
        ],
    )
    def test_traps(self, body, kind):
        result = run_expr(body)
        assert result.traps and result.traps[0][1] == kind

    def test_trap_kills_only_offending_thread(self):
        src = """.class Bad
.super Thread
.method run ()V
    iconst 1
    iconst 0
    idiv
    pop
    return
.end
.class Main
.method static main ()V
    new Bad
    dup
    invokestatic Thread.start(LThread;)V
    invokestatic Thread.join(LThread;)V
    ldc "main survived"
    invokestatic System.print(LString;)V
    return
.end
"""
        result = run_source(src)
        assert result.output_text == "main survived"
        assert result.traps[0][1] == "ArithmeticDivByZero"


class TestCalls:
    def test_static_call_args_and_return(self):
        src = """.class Main
.method static add3 (III)I
    iload 0
    iload 1
    iadd
    iload 2
    iadd
    ireturn
.end
.method static main ()V
    iconst 1
    iconst 2
    iconst 3
    invokestatic Main.add3(III)I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "6"

    def test_recursion(self):
        src = """.class Main
.method static fib (I)I
    iload 0
    iconst 2
    if_icmpge rec
    iload 0
    ireturn
rec:
    iload 0
    iconst 1
    isub
    invokestatic Main.fib(I)I
    iload 0
    iconst 2
    isub
    invokestatic Main.fib(I)I
    iadd
    ireturn
.end
.method static main ()V
    iconst 15
    invokestatic Main.fib(I)I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "610"

    def test_virtual_dispatch(self):
        src = """.class A
.method id ()I
    iconst 1
    ireturn
.end
.class B
.super A
.method id ()I
    iconst 2
    ireturn
.end
.class Main
.method static main ()V
    new B
    invokevirtual A.id()I
    invokestatic System.printInt(I)V
    new A
    invokevirtual A.id()I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "21"

    def test_invokevirtual_on_null_traps(self):
        src = """.class A
.method id ()I
    iconst 1
    ireturn
.end
.class Main
.method static main ()V
    aconst_null
    invokevirtual A.id()I
    pop
    return
.end
"""
        assert run_source(src).traps[0][1] == "NullPointer"

    def test_mutual_recursion_compiles_lazily(self):
        src = """.class Main
.method static even (I)I
    iload 0
    ifne dec
    iconst 1
    ireturn
dec:
    iload 0
    iconst 1
    isub
    invokestatic Main.odd(I)I
    ireturn
.end
.method static odd (I)I
    iload 0
    ifne dec
    iconst 0
    ireturn
dec:
    iload 0
    iconst 1
    isub
    invokestatic Main.even(I)I
    ireturn
.end
.method static main ()V
    iconst 10
    invokestatic Main.even(I)I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "1"


class TestTypeChecks:
    SRC = """.class A
.class B
.super A
.class Main
.method static main ()V
    new B
    astore 0
    aload 0
    instanceof A
    invokestatic System.printInt(I)V
    new A
    instanceof B
    invokestatic System.printInt(I)V
    aconst_null
    instanceof A
    invokestatic System.printInt(I)V
    aload 0
    checkcast A
    pop
    ldc "ok"
    invokestatic System.print(LString;)V
    new A
    checkcast B
    pop
    return
.end
"""

    def test_instanceof_and_checkcast(self):
        result = run_source(self.SRC)
        assert result.output_text == "100ok"
        assert result.traps[0][1] == "ClassCast"

    def test_null_checkcast_passes(self):
        src = """.class Main
.method static main ()V
    aconst_null
    checkcast String
    pop
    ldc "ok"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "ok"


class TestCoreLibrary:
    def test_string_methods(self):
        src = """.class Main
.method static main ()V
    ldc "hello"
    astore 0
    aload 0
    invokevirtual String.length()I
    invokestatic System.printInt(I)V
    aload 0
    iconst 1
    invokevirtual String.charAt(I)I
    invokestatic System.printChar(I)V
    aload 0
    ldc "hello"
    invokevirtual String.equals(LString;)I
    invokestatic System.printInt(I)V
    aload 0
    ldc "world"
    invokevirtual String.equals(LString;)I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "5e10"

    def test_stringbuilder(self):
        src = """.class Main
.method static main ()V
    new StringBuilder
    dup
    invokevirtual StringBuilder.init()V
    astore 0
    aload 0
    ldc "n="
    invokevirtual StringBuilder.appendString(LString;)V
    aload 0
    iconst -1234
    invokevirtual StringBuilder.appendInt(I)V
    aload 0
    iconst 33
    invokevirtual StringBuilder.appendChar(I)V
    aload 0
    invokevirtual StringBuilder.toStringObj()LString;
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "n=-1234!"

    def test_stringbuilder_zero(self):
        src = """.class Main
.method static main ()V
    new StringBuilder
    dup
    invokevirtual StringBuilder.init()V
    astore 0
    aload 0
    iconst 0
    invokevirtual StringBuilder.appendInt(I)V
    aload 0
    invokevirtual StringBuilder.toStringObj()LString;
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "0"
