"""``repro.explore``: schedule policies, systematic exploration,
happens-before race detection, and schedule minimization."""

import pytest

from repro.api import build_vm, record, replay
from repro.core.controller import MODE_RECORD, MODE_REPLAY, DejaVu
from repro.explore import (
    DeltaSchedule,
    Explorer,
    RaceDetector,
    ddmin,
    deltas_from_positions,
    detect_races,
    explore,
    positions_from_deltas,
)
from repro.vm.errors import VMError
from repro.vm.machine import Environment, VMConfig, with_baseline_engine
from repro.vm.timerdev import FixedClock, NeverTimer
from repro.workloads import get_workload, racy_bank, server, synced_bank
from tests.conftest import TEST_CONFIG

CFG = VMConfig(semispace_words=60_000)


def bank_factory():
    return racy_bank(tellers=2, deposits=6)


def bank_oracle(result):
    return None if result.output_text.strip() == "balance=12" else "lost update"


def _controlled_record(factory, positions, config=CFG):
    """Record under an explorer-style schedule: the policy is the only
    preemption source."""
    policy = DeltaSchedule.at_positions(positions)
    session = record(
        factory(),
        config=config,
        timer=NeverTimer(),
        clock=FixedClock(),
        env=Environment(seed=0),
        schedule=policy,
    )
    return session, policy


class TestPolicy:
    def test_positions_deltas_roundtrip(self):
        positions = [3, 5, 11, 12]
        assert positions_from_deltas(deltas_from_positions(positions)) == positions
        assert deltas_from_positions([3, 5, 11, 12]) == [3, 2, 6, 1]

    def test_positions_must_increase(self):
        with pytest.raises(VMError):
            deltas_from_positions([3, 3])
        with pytest.raises(VMError):
            deltas_from_positions([5, 2])

    def test_delta_schedule_fires_at_positions(self):
        sched = DeltaSchedule.at_positions([2, 5])
        fired = [i for i in range(1, 9) if sched.should_preempt(None, i)]
        assert fired == [2, 5]
        assert sched.consulted == 8
        assert sched.fired == 2
        assert sched.exhausted

    def test_schedule_only_valid_in_record_mode(self):
        session, _ = _controlled_record(bank_factory, ())
        vm = build_vm(bank_factory(), CFG)
        with pytest.raises(VMError, match="record mode"):
            DejaVu(
                vm,
                MODE_REPLAY,
                trace=session.trace,
                schedule=DeltaSchedule([1]),
            )


class TestScheduleIsTheSwitchLog:
    """The tentpole invariant: a chosen schedule and the recorded switch
    stream are the same object."""

    def test_recorded_deltas_equal_schedule_deltas(self):
        positions = (4, 9, 17)
        session, policy = _controlled_record(bank_factory, positions)
        assert session.trace.switches == deltas_from_positions(positions)
        assert policy.fired == len(positions)

    def test_controlled_record_is_deterministic(self):
        a, _ = _controlled_record(bank_factory, (5, 12))
        b, _ = _controlled_record(bank_factory, (5, 12))
        assert a.result.output_text == b.result.output_text
        assert a.result.heap_digest == b.result.heap_digest
        assert a.trace.switches == b.trace.switches
        assert a.trace.values == b.trace.values

    def test_trace_replays_through_standard_path(self):
        session, _ = _controlled_record(bank_factory, (5,))
        replayed = replay(bank_factory(), session.trace, config=CFG)
        assert replayed.output_text == session.result.output_text
        assert replayed.heap_digest == session.result.heap_digest


class TestDdmin:
    def test_finds_the_two_relevant_positions(self):
        relevant = {3, 7}
        tested = []

        def still_fails(candidate):
            tested.append(candidate)
            return relevant <= set(candidate)

        minimal, tests = ddmin(tuple(range(1, 21)), still_fails)
        assert set(minimal) == relevant
        assert tests == len(tested) <= 200

    def test_single_position_is_already_minimal(self):
        minimal, _ = ddmin((5,), lambda c: 5 in c)
        assert minimal == (5,)

    def test_respects_test_budget(self):
        minimal, tests = ddmin(tuple(range(1, 50)), lambda c: len(c) > 40, max_tests=3)
        assert tests <= 3


class TestExplorerOnBank:
    def test_finds_the_lost_update_deterministically(self):
        report = explore(
            bank_factory, oracle=bank_oracle, bound=2, budget=250, seed=42, config=CFG
        )
        assert report.found
        assert report.schedules_to_first_failure is not None
        # one preemption inside the read-stall-write window suffices
        assert len(report.minimized.positions) == 1
        again = explore(
            bank_factory, oracle=bank_oracle, bound=2, budget=250, seed=42, config=CFG
        )
        assert again.minimized.positions == report.minimized.positions
        assert again.schedules_to_first_failure == report.schedules_to_first_failure

    def test_minimized_trace_replays_byte_identically(self):
        report = explore(
            bank_factory, oracle=bank_oracle, bound=1, budget=200, seed=42, config=CFG
        )
        replayed = replay(bank_factory(), report.minimized.trace, config=CFG)
        assert replayed.output_text == report.minimized.output
        assert replayed.output_text != "balance=12"  # still the failure

    def test_minimized_trace_drives_the_debugger(self):
        from repro.debugger import Debugger, ReplaySession

        report = explore(
            bank_factory, oracle=bank_oracle, bound=1, budget=200, seed=42, config=CFG
        )
        session = ReplaySession(bank_factory(), report.minimized.trace, config=CFG)
        dbg = Debugger(session)
        dbg.break_("Teller.run()V", bci=0)
        assert dbg.cont()["status"] == "breakpoint"
        fin = dbg.finish()
        assert fin["output"] == report.minimized.output

    def test_synced_bank_survives_the_same_exploration(self):
        report = explore(
            lambda: synced_bank(tellers=2, deposits=6),
            oracle=lambda r: None
            if r.output_text.strip() == "balance=12"
            else "lost update",
            bound=1,
            budget=60,
            seed=42,
            config=CFG,
        )
        assert not report.found
        assert report.schedules_run == 60  # budget exhausted, nothing found


class TestExplorerOnServer:
    def test_seeded_atomicity_bug_found(self):
        spec = get_workload("server")
        kwargs = spec.merged_kwargs(explore=True)
        assert kwargs["served_window"] > 0
        report = Explorer(
            spec.program_factory(kwargs),
            oracle=spec.oracle(kwargs),
            bound=2,
            budget=250,
            seed=42,
            config=CFG,
        ).run()
        assert report.found
        assert "served" in report.failures[0].reason
        replayed = replay(
            spec.program_factory(kwargs)(), report.minimized.trace, config=CFG
        )
        assert replayed.output_text == report.minimized.output

    def test_unseeded_server_has_no_served_bug(self):
        # without the window the increment is preemption-atomic: the same
        # exploration budget finds nothing
        spec = get_workload("server")
        kwargs = spec.merged_kwargs({"served_window": 0}, explore=True)
        report = Explorer(
            spec.program_factory(kwargs),
            oracle=spec.oracle(kwargs),
            bound=1,
            budget=90,
            seed=42,
            config=CFG,
        ).run()
        assert not report.found


class TestRaceDetector:
    def test_flags_bank_race_with_sites(self):
        report = explore(
            bank_factory, oracle=bank_oracle, bound=1, budget=200, seed=42, config=CFG
        )
        races = detect_races(bank_factory(), report.minimized.trace, config=CFG)
        assert races.races
        race = races.races[0]
        assert race.location == "Main.balance"
        for side in (race.first, race.second):
            assert side.method == "Teller.run()V"
            assert side.bci >= 0
            assert side.kind in ("read", "write")
        assert {race.first.kind, race.second.kind} & {"write"}
        assert race.first.tid != race.second.tid

    def test_synced_bank_is_race_free(self):
        session, _ = _controlled_record(
            lambda: synced_bank(tellers=2, deposits=6), (5, 11)
        )
        races = detect_races(
            synced_bank(tellers=2, deposits=6), session.trace, config=CFG
        )
        assert races.races == []
        assert races.stats["accesses"] > 0
        assert races.stats["sync_edges"] > 0

    def test_server_served_race_flagged_without_manifesting(self):
        # HB detection is stronger than failure observation: with
        # served_window=0 the unsynchronized served++ can never lose an
        # update (no yield point splits it), yet once a preemption makes
        # both workers serve, the detector flags the latent race anyway
        factory = lambda: server(  # noqa: E731
            n_workers=2, n_requests=6, work_scale=1, served_window=0
        )
        _, policy = _controlled_record(factory, ())
        found = False
        for pos in range(1, policy.consulted + 1):
            session, _ = _controlled_record(factory, (pos,))
            last = session.result.output_text.splitlines()[-1]
            assert last.startswith("served=6")  # never manifests
            races = detect_races(factory(), session.trace, config=CFG)
            if any(r.location == "Main.served" for r in races.races):
                found = True
                break
        assert found

    def test_detection_runs_on_replay_not_record(self):
        session, _ = _controlled_record(bank_factory, (5,))
        races = detect_races(bank_factory(), session.trace, config=CFG)
        # the replayed result matches the recorded one exactly
        assert races.result.output_text == session.result.output_text
        assert races.result.heap_digest == session.result.heap_digest


class TestPerturbationFreedom:
    """The acceptance property: a recording with the detector attached is
    bit-identical to one without."""

    @staticmethod
    def _record_bank(with_detector: bool):
        config = with_baseline_engine(CFG)  # mem hooks need canonical ops
        program = racy_bank(tellers=2, deposits=6)
        vm = build_vm(
            program,
            config,
            timer=NeverTimer(),
            clock=FixedClock(),
            env=Environment(seed=0),
        )
        dejavu = DejaVu(vm, MODE_RECORD, schedule=DeltaSchedule.at_positions((5, 9)))
        detector = RaceDetector(vm) if with_detector else None
        result = vm.run(program.main)
        return result, dejavu.trace(), detector

    def test_detector_leaves_recording_bit_identical(self):
        plain_result, plain_trace, _ = self._record_bank(with_detector=False)
        hooked_result, hooked_trace, detector = self._record_bank(with_detector=True)
        assert detector.races  # it did observe the race...
        assert hooked_result.output_text == plain_result.output_text
        assert hooked_result.heap_digest == plain_result.heap_digest
        assert hooked_result.cycles == plain_result.cycles
        assert hooked_result.switches == plain_result.switches
        # ...while the trace stayed bit-for-bit the recording without it
        assert hooked_trace.switches == plain_trace.switches
        assert hooked_trace.values == plain_trace.values


class TestCliIntegration:
    def test_explore_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "failure.djv"
        rc = main(
            [
                "explore",
                "--workload",
                "bank",
                "--bound",
                "2",
                "--seed",
                "42",
                "-o",
                str(out),
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "FAILURE" in printed
        assert "race on Main.balance" in printed
        assert out.exists()
        # the CLI-written trace replays through the CLI, rebuilding the
        # workload from the trace's recorded build kwargs
        rc = main(["replay", "--workload", "bank", str(out)])
        assert rc == 0
        assert "replay verified" in capsys.readouterr().out

    def test_races_command_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "failure.djv"
        main(["explore", "--workload", "bank", "--seed", "42", "-o", str(out)])
        capsys.readouterr()
        assert main(["races", "--workload", "bank", str(out)]) == 1
        assert "race on Main.balance" in capsys.readouterr().out

    def test_registry_workloads_runnable_from_cli(self, capsys):
        # the registry satellites: gc_churn and philosophers are CLI-visible
        from repro.cli import main

        assert main(["workloads"]) == 0
        listing = capsys.readouterr().out
        assert "gc_churn" in listing and "philosophers" in listing
        assert (
            main(
                [
                    "run",
                    "--workload",
                    "gc_churn",
                    "--seed",
                    "7",
                    "-W",
                    "iters=5",
                    "-W",
                    "depth=6",
                ]
            )
            == 0
        )
        assert main(["run", "--workload", "philosophers", "-W", "rounds=2", "--seed", "1"]) == 0
