"""Seeded fuzz sweeps for the slim-trace reconstructor (v3.2).

Two properties, both of the "never a wrong answer" kind:

* **Random schedules reconstruct exactly** — across a sweep of timer
  seeds (each a different preemption schedule), the slim replay equals
  the full replay bit for bit.
* **Damage is typed, never silent** — truncating or flipping bytes of a
  sealed slim trace must land the doctor on a typed classification
  (``slim-underdetermined`` at exit 2 when the sidecar survives but the
  schedule is no longer derivable, ``corrupt-segment``/``truncated-tail``
  at exit 1, the format tiers at 2), and tampering with the in-memory
  sidecar must make replay raise :class:`ReplayDivergenceError` (the
  typed :class:`SlimReconstructError` is a subclass) or still produce
  the reference behaviour — a completed replay with *different*
  behaviour fails the sweep.

Marked ``fuzz``: tier 1 skips these (see ``addopts``); the slim-smoke
CI job runs them.
"""

from __future__ import annotations

import random

import pytest

from repro.api import record, replay, trace_from_bytes, trace_to_bytes
from repro.core.doctor import (
    CLASS_CORRUPT,
    CLASS_NOT_A_TRACE,
    CLASS_SLIM,
    CLASS_TRUNCATED,
    CLASS_VERSION_SKEW,
    diagnose,
)
from repro.core.tracelog import TraceFormatError, TraceLog
from repro.vm.errors import ReplayDivergenceError, SlimReconstructError
from repro.vm.machine import VMConfig
from repro.workloads import synced_bank

from .conftest import jitter_knobs
from .test_slim_differential import mixed_program

pytestmark = pytest.mark.fuzz

CFG = VMConfig(semispace_words=60_000)

#: the damage classes a mangled slim trace may legally land on —
#: anything else (in particular: a clean verdict) fails the sweep
DAMAGE_CLASSES = {
    CLASS_SLIM,
    CLASS_CORRUPT,
    CLASS_TRUNCATED,
    CLASS_NOT_A_TRACE,
    CLASS_VERSION_SKEW,
}


def _sealed_slim(tmp_path, name="mixed.djv"):
    """A sealed slim recording of the mixed workload + its reference."""
    prog = mixed_program()
    slim = record(prog, config=CFG, slim=True, **jitter_knobs(13))
    assert slim.trace.slim_info is not None
    path = tmp_path / name
    path.write_bytes(trace_to_bytes(slim.trace))
    reference = replay(prog, slim.trace, config=CFG)
    return prog, slim.trace, path, reference


def test_random_schedules_reconstruct_exactly():
    """Every timer seed is a different preemption schedule; each one
    must slim-record unperturbed and slim-replay identically."""
    dropped_any = False
    for seed in range(10):
        for factory in (lambda: synced_bank(3, 24), mixed_program):
            prog = factory()
            full = record(prog, config=CFG, **jitter_knobs(seed))
            slim = record(prog, config=CFG, slim=True, **jitter_knobs(seed))
            assert slim.result.behavior_key() == full.result.behavior_key(), seed
            r_full = replay(factory(), full.trace, config=CFG)
            r_slim = replay(factory(), slim.trace, config=CFG)
            assert r_slim.behavior_key() == r_full.behavior_key(), seed
            info = slim.trace.slim_info
            if info is not None and info["dropped"] > 0:
                dropped_any = True
    # the sweep must actually exercise reconstruction, not just fallbacks
    assert dropped_any


def test_truncated_slim_trace_is_typed_never_wrong(tmp_path):
    """Seeded truncation points across the whole file: the doctor must
    land on a typed damage class — a torn slim trace that can no longer
    determine the schedule is ``slim-underdetermined`` (exit 2), never a
    quietly-different replay."""
    prog, _, path, _ = _sealed_slim(tmp_path)
    blob = path.read_bytes()
    rng = random.Random(0x51)
    cuts = sorted(rng.sample(range(4, len(blob) - 1), 16))
    saw_slim_class = False
    for cut in cuts:
        mangled = tmp_path / f"cut{cut}.djv"
        mangled.write_bytes(blob[:cut])
        report = diagnose(mangled, program=prog, config=CFG)
        assert report.classification in DAMAGE_CLASSES, (
            cut,
            report.classification,
            report.detail,
        )
        if report.classification == CLASS_SLIM:
            saw_slim_class = True
            assert report.exit_code == 2, cut
        else:
            assert report.exit_code in (1, 2), cut
        # the salvage path itself must never crash unhandled either
        try:
            TraceLog.salvage(mangled)
        except TraceFormatError:
            pass
    assert saw_slim_class, "no cut point exercised slim-underdetermined"


def test_flipped_bytes_are_typed_never_wrong(tmp_path):
    """Seeded single-byte flips past the magic/version header: CRCs (or
    the slim consistency checks) must catch every one — the doctor never
    reports clean and never crashes."""
    prog, _, path, _ = _sealed_slim(tmp_path)
    blob = path.read_bytes()
    rng = random.Random(77)
    for i, offset in enumerate(rng.sample(range(6, len(blob)), 16)):
        mangled_bytes = bytearray(blob)
        mangled_bytes[offset] ^= 1 << rng.randrange(8)
        mangled = tmp_path / f"flip{i}.djv"
        mangled.write_bytes(bytes(mangled_bytes))
        report = diagnose(mangled, program=prog, config=CFG)
        assert report.classification in DAMAGE_CLASSES, (
            offset,
            report.classification,
            report.detail,
        )
        assert report.exit_code in (1, 2), offset


def test_tampered_sidecar_never_replays_wrong(tmp_path):
    """Mutate the decoded sidecar and slim meta directly (what a codec
    bug or targeted corruption would produce): replay must raise the
    typed divergence error or still land on the reference behaviour."""
    prog, trace, _, reference = _sealed_slim(tmp_path)
    blob = trace_to_bytes(trace)
    rng = random.Random(1234)

    def fresh():
        return trace_from_bytes(blob)

    mutations = []
    for _ in range(8):
        idx = rng.randrange(len(trace.slim))
        bump = rng.choice((-2, -1, 1, 2, 17))
        mutations.append(("bump-word", idx, bump))
    mutations += [
        ("drop-last-triple", None, None),
        ("swap-words", 0, len(trace.slim) // 2),
        ("meta-kept", None, 1),
        ("meta-sync", None, -1),
    ]

    raised = 0
    for kind, a, b in mutations:
        mutated = fresh()
        if kind == "bump-word":
            mutated.slim[a] = max(0, mutated.slim[a] + b)
        elif kind == "drop-last-triple":
            del mutated.slim[-3:]
        elif kind == "swap-words":
            mutated.slim[a], mutated.slim[b] = mutated.slim[b], mutated.slim[a]
        else:
            info = dict(mutated.slim_info)
            key = "kept" if kind == "meta-kept" else "sync_total"
            info[key] += b
            mutated.meta["slim"] = tuple(sorted(info.items()))
        try:
            r = replay(mixed_program(), mutated, config=CFG)
        except ReplayDivergenceError:
            raised += 1  # typed: SlimReconstructError is a subclass
            continue
        assert r.behavior_key() == reference.behavior_key(), (kind, a, b)
    # the sweep must actually trip the typed path, not only no-ops
    assert raised > 0


def test_doctor_pins_reconstruct_failures_statically(tmp_path):
    """A sidecar whose arithmetic no longer matches the kept stream must
    be caught by the doctor's static stage (no replay needed) as
    ``slim-underdetermined``."""
    prog, trace, _, _ = _sealed_slim(tmp_path)
    mutated = trace_from_bytes(trace_to_bytes(trace))
    info = dict(mutated.slim_info)
    info["dropped"] += 5  # claims five more drops than the sidecar holds
    mutated.meta["slim"] = tuple(sorted(info.items()))
    path = tmp_path / "bad-meta.djv"
    path.write_bytes(trace_to_bytes(mutated))

    report = diagnose(path)  # no program: static stages only
    assert report.classification == CLASS_SLIM
    assert report.exit_code == 2

    # and the replay path agrees, with the typed error
    with pytest.raises(SlimReconstructError):
        replay(prog, mutated, config=CFG)
