"""Cross-engine matrix for the §5 baselines.

The EngineConfig determinism contract says dispatch layers (threading,
fusion, inline caches) are never guest-visible.  The baselines run on
the same engine as DejaVu, so the contract must extend to them: every
comparator has to behave *identically* under the ``baseline`` and
``full`` engine configurations — same results, same trace content, and
traces recorded under one engine must replay under the other.
"""

import pytest

from repro.baselines import (
    instant_replay_record,
    instant_replay_replay,
    rc_record,
    rc_replay,
    recap_record,
    recap_replay,
    repeated_execution,
)
from repro.core import compare_runs
from repro.vm.engineconfig import EngineConfig
from repro.vm.machine import VMConfig
from repro.workloads import producer_consumer, racy_bank, synced_bank
from tests.conftest import jitter_knobs

ENGINES = {
    "baseline": EngineConfig.baseline(),
    "full": EngineConfig(),
}


def _cfg(engine: str) -> VMConfig:
    return VMConfig(semispace_words=70_000, engine=ENGINES[engine])


class TestInstantReplayAcrossEngines:
    def test_record_identical(self):
        res = {
            e: instant_replay_record(synced_bank(), config=_cfg(e), **jitter_knobs(9))
            for e in ENGINES
        }
        (r1, crew1), (r2, crew2) = res["baseline"], res["full"]
        assert compare_runs(r1, r2).faithful
        assert crew1.n_records == crew2.n_records
        assert crew1.n_objects == crew2.n_objects

    @pytest.mark.parametrize("rec_engine,rep_engine", [("baseline", "full"), ("full", "baseline")])
    def test_cross_engine_replay(self, rec_engine, rep_engine):
        res, crew = instant_replay_record(
            synced_bank(), config=_cfg(rec_engine), **jitter_knobs(9)
        )
        res2 = instant_replay_replay(
            synced_bank(), crew, config=_cfg(rep_engine), **jitter_knobs(77)
        )
        assert res.output_text == res2.output_text


class TestRussinovichCogswellAcrossEngines:
    def test_record_identical(self):
        res = {e: rc_record(racy_bank(), config=_cfg(e), **jitter_knobs(4)) for e in ENGINES}
        (r1, t1, s1), (r2, t2, s2) = res["baseline"], res["full"]
        assert compare_runs(r1, r2).faithful
        assert s1["dispatch_records"] == s2["dispatch_records"]
        assert t1.switches == t2.switches
        assert t1.values == t2.values

    @pytest.mark.parametrize("rec_engine,rep_engine", [("baseline", "full"), ("full", "baseline")])
    def test_cross_engine_replay(self, rec_engine, rep_engine):
        res, trace, _ = rc_record(racy_bank(), config=_cfg(rec_engine), **jitter_knobs(4))
        res2, map_ops = rc_replay(racy_bank(), trace, config=_cfg(rep_engine))
        assert compare_runs(res, res2).faithful
        assert map_ops > 0


class TestRecapAcrossEngines:
    def test_record_identical(self):
        sessions = {
            e: recap_record(racy_bank(), config=_cfg(e), **jitter_knobs(4))
            for e in ENGINES
        }
        s1, s2 = sessions["baseline"], sessions["full"]
        assert compare_runs(s1.result, s2.result).faithful
        assert s1.read_records == s2.read_records
        assert s1.trace.switches == s2.trace.switches
        assert s1.trace.values == s2.trace.values

    @pytest.mark.parametrize("rec_engine,rep_engine", [("baseline", "full"), ("full", "baseline")])
    def test_cross_engine_replay(self, rec_engine, rep_engine):
        session = recap_record(racy_bank(), config=_cfg(rec_engine), **jitter_knobs(4))
        res2 = recap_replay(session, config=_cfg(rep_engine))
        assert compare_runs(session.result, res2).faithful


class TestRepeatedExecutionAcrossEngines:
    def test_reports_identical(self):
        reports = {
            e: repeated_execution(
                lambda: producer_consumer(items_per_producer=6),
                runs=5,
                config=_cfg(e),
                base_seed=3,
            )
            for e in ENGINES
        }
        r1, r2 = reports["baseline"], reports["full"]
        assert r1.outputs == r2.outputs
        assert r1.distinct_outputs == r2.distinct_outputs
        assert r1.distinct_behaviors == r2.distinct_behaviors
        assert r1.reproduced_first == r2.reproduced_first
