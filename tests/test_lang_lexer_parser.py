"""MiniJ front end: lexer and parser."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang import parse, tokenize
from repro.lang.errors import MiniJSyntaxError


class TestLexer:
    def test_kinds(self):
        toks = tokenize('class x 42 0x2A "hi" + == >>> //c\n/*multi\nline*/ y')
        kinds = [(t.kind, t.text) for t in toks]
        assert kinds == [
            ("kw", "class"),
            ("ident", "x"),
            ("int", "42"),
            ("int", "0x2A"),
            ("string", "hi"),
            ("punct", "+"),
            ("punct", "=="),
            ("punct", ">>>"),
            ("ident", "y"),
            ("eof", ""),
        ]

    def test_line_and_col_tracking(self):
        toks = tokenize("a\n  bb\n   c")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)
        assert (toks[2].line, toks[2].col) == (3, 4)

    def test_string_escapes(self):
        toks = tokenize(r'"a\nb\t\"q\""')
        assert toks[0].text == 'a\nb\t"q"'

    def test_block_comment_tracks_lines(self):
        toks = tokenize("/* a\nb\nc */ x")
        assert toks[0].line == 3

    @pytest.mark.parametrize(
        "bad", ['"unterminated', '"bad \\z escape"', "/* never closed", "@", "$"]
    )
    def test_errors(self, bad):
        with pytest.raises(MiniJSyntaxError):
            tokenize(bad)

    def test_maximal_munch(self):
        toks = tokenize("a>>>b >> > >= ++ +")
        texts = [t.text for t in toks if t.kind == "punct"]
        assert texts == [">>>", ">>", ">", ">=", "++", "+"]


class TestParser:
    def test_class_shape(self):
        prog = parse(
            """
class Foo extends Bar {
    int x;
    static int y;
    Foo next;
    void go(int a, int[] b) { }
    static native int poke(int v);
}
"""
        )
        cls = prog.classes[0]
        assert cls.name == "Foo" and cls.super_name == "Bar"
        assert [(f.name, f.desc, f.static) for f in cls.fields] == [
            ("x", "I", False),
            ("y", "I", True),
            ("next", "LFoo;", False),
        ]
        go = cls.methods[0]
        assert go.sig == "(I[I)V" and not go.static
        poke = cls.methods[1]
        assert poke.native and poke.static and poke.sig == "(I)I"

    def test_default_super_is_object(self):
        assert parse("class A {}").classes[0].super_name == "Object"

    def test_field_list_declaration(self):
        cls = parse("class A { int x, y, z; }").classes[0]
        assert [f.name for f in cls.fields] == ["x", "y", "z"]

    def test_decl_vs_expr_disambiguation(self):
        body = parse(
            """
class A {
    static void m(int[] a) {
        int x = 1;
        Foo f = null;
        Foo[] fs = null;
        a[0] = 2;
        x = a[x];
    }
}
class Foo {}
"""
        ).classes[0].methods[0].body
        kinds = [type(s).__name__ for s in body.stmts]
        assert kinds == ["LocalDecl", "LocalDecl", "LocalDecl", "Assign", "Assign"]

    def test_precedence(self):
        prog = parse("class A { static int m() { return 1 + 2 * 3 == 7 && true; } }")
        ret = prog.classes[0].methods[0].body.stmts[0]
        expr = ret.value
        assert isinstance(expr, A.Binary) and expr.op == "&&"
        eq = expr.left
        assert isinstance(eq, A.Binary) and eq.op == "=="
        add = eq.left
        assert isinstance(add, A.Binary) and add.op == "+"
        mul = add.right
        assert isinstance(mul, A.Binary) and mul.op == "*"

    def test_postfix_chains(self):
        prog = parse("class A { static int m(B b) { return b.c.d[3].e(); } }")
        ret = prog.classes[0].methods[0].body.stmts[0]
        call = ret.value
        assert isinstance(call, A.Call) and call.name == "e"
        idx = call.target
        assert isinstance(idx, A.Index)
        member = idx.array
        assert isinstance(member, A.Member) and member.name == "d"

    def test_for_and_increments(self):
        prog = parse("class A { static void m() { for (int i = 0; i < 3; i++) { } } }")
        loop = prog.classes[0].methods[0].body.stmts[0]
        assert isinstance(loop, A.For)
        assert isinstance(loop.init, A.LocalDecl)
        assert isinstance(loop.update, A.Assign) and loop.update.op == "+="

    def test_synchronized(self):
        prog = parse("class A { static void m(Object o) { synchronized (o) { } } }")
        sync = prog.classes[0].methods[0].body.stmts[0]
        assert isinstance(sync, A.Sync)

    def test_new_forms(self):
        prog = parse(
            "class A { static void m() { Object o = new Object(); int[] a = new int[5]; A[] b = new A[2]; } }"
        )
        stmts = prog.classes[0].methods[0].body.stmts
        assert isinstance(stmts[0].init, A.New)
        assert isinstance(stmts[1].init, A.NewArray) and stmts[1].init.elem_desc == "I"
        assert stmts[2].init.elem_desc == "LA;"

    def test_instanceof(self):
        prog = parse("class A { static boolean m(Object o) { return o instanceof A; } }")
        ret = prog.classes[0].methods[0].body.stmts[0]
        assert isinstance(ret.value, A.InstanceOf)

    @pytest.mark.parametrize(
        "src,frag",
        [
            ("class {", "expected"),
            ("class A { int; }", "expected"),
            ("class A { void m() { 1 = 2; } }", "assignable"),
            ("class A { void m() { if (1) } }", "unexpected"),
            ("class A { void m( { } }", "expected"),
            ("class A { void v; }", "void"),
            ("class A { native int n(); }", None),  # ok actually
        ],
    )
    def test_syntax_errors(self, src, frag):
        if frag is None:
            parse(src)
            return
        with pytest.raises(MiniJSyntaxError) as exc:
            parse(src)
        assert frag in str(exc.value)

    def test_error_carries_location(self):
        with pytest.raises(MiniJSyntaxError) as exc:
            parse("class A {\n  void m() {\n    1 = 2;\n  }\n}")
        assert exc.value.line == 3
