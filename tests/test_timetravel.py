"""Time-travel debugging (reverse execution via re-replay)."""

import pytest

from repro.api import record
from repro.core import compare_runs
from repro.debugger.timetravel import TimeTravelSession
from repro.vm import SeededJitterTimer
from repro.vm.errors import VMError
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank
from tests.conftest import jitter_knobs

CFG = VMConfig(semispace_words=60_000)


@pytest.fixture(scope="module")
def recorded():
    return record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))


class TestTimeTravel:
    def test_positions_are_reproducible(self, recorded):
        tt = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        tt.run_to_breakpoint("Teller.run()V", bci=4)
        first = tt.mark()
        balance_then = tt.read_static("Main", "balance")
        # run further
        tt.run_to_breakpoint("Teller.run()V", bci=4)
        tt.run_to_breakpoint("Teller.run()V", bci=4)
        assert tt.now > first.cycles
        # travel back
        landed = tt.reverse_to_last_mark()
        assert landed.cycles >= first.cycles
        assert tt.read_static("Main", "balance") == balance_then
        assert landed.method == first.method

    def test_back_steps_cycles(self, recorded):
        tt = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        tt.goto_cycles(500)
        at = tt.now
        tt.back(200)
        assert tt.now < at
        assert tt.now >= at - 200 - 1

    def test_forward_travel_without_restart(self, recorded):
        tt = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        tt.goto_cycles(100)
        vm_before = tt.session.vm
        tt.goto_cycles(300)
        assert tt.session.vm is vm_before  # forward: same replay continues

    def test_backward_travel_restarts(self, recorded):
        tt = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        tt.goto_cycles(300)
        vm_before = tt.session.vm
        tt.goto_cycles(100)
        assert tt.session.vm is not vm_before

    def test_state_at_time_is_a_function_of_time(self, recorded):
        """The core property: visiting cycle T twice observes identical
        state — reverse execution is sound because replay is accurate."""
        readings = []
        tt = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        for _ in range(2):
            tt.goto_cycles(1500)
            readings.append(
                (tt.now, tt.read_static("Main", "balance"), tt.here().method)
            )
            tt.goto_cycles(0)
        assert readings[0] == readings[1]

    def test_travel_then_finish_is_still_faithful(self, recorded):
        tt = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        tt.goto_cycles(800)
        tt.back(500)
        result = tt.finish()
        assert compare_runs(recorded.result, result).faithful

    def test_goto_past_end_completes(self, recorded):
        tt = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        tt.goto_cycles(10**9)
        assert tt.session.vm.completed

    def test_bad_target_rejected(self, recorded):
        tt = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        with pytest.raises(VMError):
            tt.goto_cycles(-1)

    def test_no_marks_error(self, recorded):
        tt = TimeTravelSession(racy_bank(), recorded.trace, config=CFG)
        with pytest.raises(VMError):
            tt.reverse_to_last_mark()
