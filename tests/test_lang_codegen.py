"""MiniJ codegen: semantics of compiled programs, type errors, line tables."""

import pytest

from repro.api import GuestProgram, build_vm
from repro.lang import MiniJTypeError, compile_source
from repro.vm.machine import VMConfig
from tests.conftest import TEST_CONFIG


def run_minij(source: str, main: str = "Main.main()V", config=None):
    program = GuestProgram(classdefs=compile_source(source), main=main, name="minij")
    vm = build_vm(program, config or TEST_CONFIG)
    return vm.run(program.main)


def out_of(source: str) -> str:
    result = run_minij(source)
    assert not result.traps, result.traps
    return result.output_text


def main_wrap(body: str, extra: str = "") -> str:
    return f"class Main {{ static void main() {{ {body} }} }}\n{extra}"


class TestExpressions:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", "7"),
            ("(1 + 2) * 3", "9"),
            ("7 / 2", "3"),
            ("-7 / 2", "-3"),
            ("7 % 3", "1"),
            ("-(3 - 10)", "7"),
            ("1 << 5", "32"),
            ("-64 >> 3", "-8"),
            ("-1 >>> 28", "15"),
            ("12 & 10", "8"),
            ("12 | 10", "14"),
            ("12 ^ 10", "6"),
            ("~0", "-1"),
            ("3 < 5", "1"),
            ("5 <= 4", "0"),
            ("3 == 3", "1"),
            ("3 != 3", "0"),
            ("!true", "0"),
            ("!0", "1"),
            ("!7", "0"),
            ("true && false", "0"),
            ("true || false", "1"),
            ("0x10", "16"),
        ],
    )
    def test_int_expressions(self, expr, expected):
        assert out_of(main_wrap(f"System.printInt({expr});")) == expected

    def test_short_circuit_actually_short_circuits(self):
        src = """
class Main {
    static int calls;
    static boolean bump() { Main.calls += 1; return true; }
    static void main() {
        boolean x = false && Main.bump();
        boolean y = true || Main.bump();
        System.printInt(Main.calls);
    }
}
"""
        assert out_of(src) == "0"

    def test_reference_equality(self):
        src = main_wrap(
            """
        Object a = new Object();
        Object b = new Object();
        System.printInt(a == a);
        System.printInt(a == b);
        System.printInt(a != null);
        System.printInt(null == null);
        """
        )
        assert out_of(src) == "1011"

    def test_string_literal_and_call(self):
        src = main_wrap('System.printInt("hello".length());')
        assert out_of(src) == "5"


class TestStatements:
    def test_while_and_compound_assign(self):
        src = main_wrap(
            """
        int total = 0;
        int i = 0;
        while (i <= 100) { total += i; i++; }
        System.printInt(total);
        """
        )
        assert out_of(src) == "5050"

    def test_for_with_break_continue(self):
        src = main_wrap(
            """
        int total = 0;
        for (int i = 0; i < 100; i++) {
            if (i % 2 == 0) continue;
            if (i > 10) break;
            total += i;
        }
        System.printInt(total);
        """
        )
        assert out_of(src) == "25"  # 1+3+5+7+9

    def test_nested_if_else(self):
        src = """
class Main {
    static int grade(int score) {
        if (score >= 90) return 4;
        else if (score >= 80) return 3;
        else if (score >= 70) return 2;
        else return 0;
    }
    static void main() {
        System.printInt(Main.grade(95));
        System.printInt(Main.grade(85));
        System.printInt(Main.grade(75));
        System.printInt(Main.grade(5));
    }
}
"""
        assert out_of(src) == "4320"

    def test_arrays(self):
        src = main_wrap(
            """
        int[] a = new int[5];
        for (int i = 0; i < a.length; i++) a[i] = i * i;
        a[2] += 100;
        int sum = 0;
        for (int i = 0; i < a.length; i++) sum += a[i];
        System.printInt(sum);
        """
        )
        assert out_of(src) == str(0 + 1 + 104 + 9 + 16)

    def test_ref_arrays(self):
        src = """
class Box { int v; }
class Main {
    static void main() {
        Box[] boxes = new Box[3];
        for (int i = 0; i < boxes.length; i++) {
            boxes[i] = new Box();
            boxes[i].v = i + 1;
        }
        System.printInt(boxes[0].v + boxes[1].v + boxes[2].v);
    }
}
"""
        assert out_of(src) == "6"

    def test_locals_default_initialised(self):
        src = main_wrap("int x; Object o; System.printInt(x); System.printInt(o == null);")
        assert out_of(src) == "01"


class TestObjects:
    def test_fields_and_virtual_dispatch(self):
        src = """
class Animal {
    int legs;
    int speak() { return 0; }
    int legCount() { return this.legs; }
}
class Dog extends Animal {
    int speak() { return 1; }
}
class Main {
    static void main() {
        Animal a = new Dog();
        a.legs = 4;
        System.printInt(a.speak());
        System.printInt(a.legCount());
        System.printInt(a instanceof Dog);
        System.printInt(new Animal() instanceof Dog);
    }
}
"""
        assert out_of(src) == "1410"

    def test_inherited_fields(self):
        src = """
class Base { int x; }
class Derived extends Base { int y; }
class Main {
    static void main() {
        Derived d = new Derived();
        d.x = 3; d.y = 4;
        System.printInt(d.x * 10 + d.y);
    }
}
"""
        assert out_of(src) == "34"

    def test_static_fields_and_methods(self):
        src = """
class Counter {
    static int n;
    static int bump(int by) { Counter.n += by; return Counter.n; }
}
class Main {
    static void main() {
        Counter.bump(5);
        Counter.bump(7);
        System.printInt(Counter.n);
    }
}
"""
        assert out_of(src) == "12"

    def test_recursion(self):
        src = """
class Main {
    static int fib(int n) {
        if (n < 2) return n;
        return Main.fib(n - 1) + Main.fib(n - 2);
    }
    static void main() { System.printInt(Main.fib(15)); }
}
"""
        assert out_of(src) == "610"


class TestConcurrency:
    def test_threads_and_monitors(self):
        src = """
class Worker extends Thread {
    void run() {
        for (int i = 0; i < 30; i++) {
            synchronized (Main.lock) { Main.n += 1; }
        }
    }
}
class Main {
    static int n;
    static Object lock;
    static void main() {
        Main.lock = new Object();
        Worker a = new Worker();
        Worker b = new Worker();
        Thread.start(a);
        Thread.start(b);
        Thread.join(a);
        Thread.join(b);
        System.printInt(Main.n);
    }
}
"""
        assert out_of(src) == "60"

    def test_wait_notify_from_minij(self):
        src = """
class Waiter extends Thread {
    void run() {
        synchronized (Main.lock) {
            Main.ready = true;
            System.wait(Main.lock);
            System.print("woken");
        }
    }
}
class Main {
    static Object lock;
    static boolean ready;
    static void main() {
        Main.lock = new Object();
        Waiter w = new Waiter();
        Thread.start(w);
        while (!Main.ready) Thread.yield();
        synchronized (Main.lock) { System.notify(Main.lock); }
        Thread.join(w);
    }
}
"""
        assert out_of(src) == "woken"


class TestLineTables:
    def test_lines_flow_to_reflection(self):
        src = "class Main {\n  static void main() {\n    int x = 1;\n    System.printInt(x);\n  }\n}\n"
        cds = compile_source(src)
        m = cds[0].method_def("main()V")
        assert m.line_table[0] == 3  # 'int x = 1;'
        assert 4 in set(m.line_table.values())  # the print call


class TestTypeErrors:
    @pytest.mark.parametrize(
        "body,frag",
        [
            ("int x = null;", "cannot initialise"),
            ("Object o = 1;", "cannot initialise"),
            ("int x = 1; x = new Object();", "cannot assign"),
            ("unknownVar = 1;", "unknown local"),
            ("int x = yy;", "unknown name"),
            ("System.printInt(new Object());", "no method"),
            ("System.noSuch();", "no method"),
            ("Object o = new Nope();", "unknown class"),
            ("int x = 1 + new Object();", "must be int"),
            ("new Object()[0] = 1;", "non-array"),
            ("int x = 5; x.f = 1;", "must be a reference"),
            ("synchronized (5) { }", "must be a reference"),
            ("int x = 0; int x = 1;", "duplicate local"),
            ("return 5;", "void method returns a value"),
            ("Object o = null; boolean b = o && true;", "must be int"),
            ("this.toString();", "'this' in a static method"),
            ("int q = Main;", "used as a value"),
        ],
    )
    def test_rejections(self, body, frag):
        with pytest.raises(MiniJTypeError) as exc:
            compile_source(main_wrap(body))
        assert frag in str(exc.value)

    def test_missing_return_detected(self):
        src = "class Main { static int m() { int x = 1; } static void main() { } }"
        with pytest.raises(MiniJTypeError, match="without returning"):
            compile_source(src)

    def test_return_inside_synchronized_rejected(self):
        src = main_wrap("synchronized (Main.lock) { return; }", "")
        src = (
            "class Main { static Object lock; static void main() {"
            " Main.lock = new Object();"
            " synchronized (Main.lock) { return; } } }"
        )
        with pytest.raises(MiniJTypeError, match="synchronized"):
            compile_source(src)

    def test_unknown_superclass(self):
        with pytest.raises(MiniJTypeError, match="unknown superclass"):
            compile_source("class A extends Ghost { }")

    def test_inheritance_cycle(self):
        with pytest.raises(MiniJTypeError, match="cycle"):
            compile_source("class A extends B { } class B extends A { }")

    def test_duplicate_class(self):
        with pytest.raises(MiniJTypeError, match="duplicate class"):
            compile_source("class A { } class A { }")


class TestVerifierBackstop:
    def test_compiled_code_passes_the_vm_verifier(self):
        """Everything MiniJ emits must satisfy the bytecode verifier — the
        type-accurate-GC safety net behind the compiler."""
        src = """
class Node { Node next; int v; }
class Main {
    static Node build(int n) {
        Node head = null;
        for (int i = 0; i < n; i++) {
            Node fresh = new Node();
            fresh.v = i;
            fresh.next = head;
            head = fresh;
        }
        return head;
    }
    static void main() {
        Node list = Main.build(10);
        int sum = 0;
        while (list != null) { sum += list.v; list = list.next; }
        System.printInt(sum);
    }
}
"""
        assert out_of(src) == "45"  # loading ran the verifier on every method
