"""The replay-divergence doctor: one test per classification, plus the
failure-context capture (first divergent event, thread/method/bci,
stream neighborhoods)."""

import pytest

from repro.api import record
from repro.core.doctor import (
    CLASS_CLEAN,
    CLASS_CONFIG_MISMATCH,
    CLASS_CORRUPT,
    CLASS_KWARGS_MISMATCH,
    CLASS_NONDETERMINISM,
    CLASS_NOT_A_TRACE,
    CLASS_TRUNCATED,
    CLASS_VERSION_SKEW,
    diagnose,
)
from repro.core.tracelog import MAGIC
from repro.core.verify import event_thread, format_neighborhood
from repro.faults.inject import segment_boundaries
from repro.vm import SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank, server

CFG = VMConfig(semispace_words=60_000)


def _program():
    return racy_bank(tellers=2, deposits=8)


@pytest.fixture
def sealed(tmp_path):
    """A clean recording of the small bank, with workload meta stamped."""
    path = tmp_path / "t.djv"
    record(
        _program(),
        config=CFG,
        timer=SeededJitterTimer(5, 40, 160),
        out=path,
        extra_meta={
            "workload": "racy_bank",
            "workload_kwargs": {"tellers": 2, "deposits": 8},
        },
    )
    return path


class TestClassifications:
    def test_clean(self, sealed):
        report = diagnose(sealed, program=_program(), config=CFG)
        assert report.classification == CLASS_CLEAN
        assert report.ok and report.exit_code == 0
        assert any("replay: faithful" in c for c in report.checks)

    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "x.djv"
        path.write_bytes(b"definitely not a trace")
        report = diagnose(path)
        assert report.classification == CLASS_NOT_A_TRACE
        assert report.exit_code == 2

    def test_version_skew(self, tmp_path):
        path = tmp_path / "x.djv"
        path.write_bytes(MAGIC + (99).to_bytes(2, "little") + b"\x00" * 8)
        report = diagnose(path)
        assert report.classification == CLASS_VERSION_SKEW
        assert report.exit_code == 2

    def test_truncated_tail(self, sealed):
        blob = sealed.read_bytes()
        sealed.write_bytes(blob[:-9])  # tear off the footer's tail
        report = diagnose(sealed, program=_program(), config=CFG)
        assert report.classification == CLASS_TRUNCATED
        assert report.exit_code == 1
        assert report.salvage is not None
        assert any("prefix replay" in c for c in report.checks)

    def test_single_byte_corruption(self, sealed):
        blob = bytearray(sealed.read_bytes())
        # damage the middle of the first segment's payload
        first_end = segment_boundaries(bytes(blob))[0]
        blob[(len(MAGIC) + 2 + 9 + first_end) // 2] ^= 0x10
        sealed.write_bytes(bytes(blob))
        report = diagnose(sealed, program=_program(), config=CFG)
        assert report.classification == CLASS_CORRUPT
        assert report.exit_code == 1
        assert "segment" in report.detail

    def test_engine_config_mismatch(self, sealed):
        report = diagnose(
            sealed,
            program=_program(),
            config=VMConfig(semispace_words=90_000),
        )
        assert report.classification == CLASS_CONFIG_MISMATCH
        assert report.exit_code == 1
        assert "heap" in report.detail

    def test_workload_kwargs_mismatch(self, sealed):
        report = diagnose(
            sealed,
            program=_program(),
            config=CFG,
            workload_kwargs={"tellers": 2, "deposits": 40},
        )
        assert report.classification == CLASS_KWARGS_MISMATCH
        assert report.exit_code == 1
        assert "deposits" in report.detail

    def test_genuine_nondeterminism(self, sealed):
        # replaying the wrong program against a sound file: the doctor's
        # last bucket — everything static checks out, the execution doesn't
        wrong = server(n_workers=2, n_requests=6, seed=3, work_scale=1)
        report = diagnose(sealed, program=wrong, config=CFG)
        assert report.classification == CLASS_NONDETERMINISM
        assert report.exit_code == 1


class TestFailureContext:
    def test_nondeterminism_report_carries_context(self, sealed):
        wrong = server(n_workers=2, n_requests=6, seed=3, work_scale=1)
        report = diagnose(sealed, program=wrong, config=CFG)
        text = report.format()
        assert "classification: nondeterminism" in text
        # the ±5-word stream windows around the cursors are included
        assert report.switch_neighborhood or report.value_neighborhood

    def test_static_only_without_program(self, sealed):
        report = diagnose(sealed, config=CFG)
        assert report.classification == CLASS_CLEAN
        assert any("replay: skipped" in c for c in report.checks)


class TestVerifyNeighborhood:
    def test_event_thread_extraction(self):
        assert event_thread(("switch", 1, 2, 300)) == 2
        assert event_thread(("thread_start", 4, "worker")) == 4
        assert event_thread(("clock", 9)) is None
        assert event_thread(None) is None

    def test_format_neighborhood_marks_divergence(self):
        recorded = [("clock", i) for i in range(10)]
        replayed = recorded[:6] + [("clock", 99)] + recorded[7:]
        text = format_neighborhood(recorded, replayed, 6, radius=2)
        lines = text.splitlines()
        assert len(lines) == 5  # ±2 around index 6
        assert any(line.startswith(">>") and "!=" in line for line in lines)
        assert sum("==" in line for line in lines) == 4
