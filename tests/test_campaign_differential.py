"""The campaign determinism contract: ``--jobs 1`` and ``--jobs N`` are
observably identical.

The runner's claim is that every item result is a pure function of
``(payload, item)`` and the parent merges by work-list index, so worker
count, shard assignment, and message arrival order can never leak into
the outcome.  These tests pin the claim end to end on the two campaign
kinds at k=1 and k=2: identical behaviour-digest sets, identical failure
lists, identical report digests, and **byte-identical** corpora.
"""

from pathlib import Path

import pytest

from repro.campaign import run_explore_campaign, run_faults_campaign
from repro.faults import FaultPlan
from repro.vm.machine import VMConfig

CFG = VMConfig(semispace_words=60_000)


def corpus_files(root) -> "dict[str, bytes]":
    """Every corpus file (entries + index) by name — the byte-level
    identity two equivalent campaigns must agree on."""
    return {
        p.name: p.read_bytes() for p in sorted(Path(root).iterdir()) if p.is_file()
    }


def run_pair(workload, tmp_path, *, bound, budget, jobs=4, **kwargs):
    d1 = tmp_path / "corpus-j1"
    dn = tmp_path / f"corpus-j{jobs}"
    serial = run_explore_campaign(
        workload,
        bound=bound,
        budget=budget,
        jobs=1,
        config=CFG,
        corpus_dir=d1,
        **kwargs,
    )
    sharded = run_explore_campaign(
        workload,
        bound=bound,
        budget=budget,
        jobs=jobs,
        config=CFG,
        corpus_dir=dn,
        **kwargs,
    )
    return serial, sharded, d1, dn


class TestExploreDifferential:
    @pytest.mark.parametrize("bound", [1, 2])
    def test_bank_jobs1_equals_jobs4(self, tmp_path, bound):
        serial, sharded, d1, dn = run_pair(
            "bank", tmp_path, bound=bound, budget=40
        )
        assert serial.behavior_set() == sharded.behavior_set()
        assert serial.unique_behaviors == sharded.unique_behaviors
        assert len(serial.failures) == len(sharded.failures)
        assert serial.digest() == sharded.digest()
        assert corpus_files(d1) == corpus_files(dn)

    def test_server_jobs1_equals_jobs4(self, tmp_path):
        serial, sharded, d1, dn = run_pair(
            "server", tmp_path, bound=1, budget=15
        )
        assert serial.digest() == sharded.digest()
        assert corpus_files(d1) == corpus_files(dn)

    @pytest.mark.fuzz
    def test_server_k2_jobs1_equals_jobs4(self, tmp_path):
        serial, sharded, d1, dn = run_pair(
            "server", tmp_path, bound=2, budget=80
        )
        assert serial.digest() == sharded.digest()
        assert corpus_files(d1) == corpus_files(dn)

    def test_failures_are_ordered_by_worklist(self, tmp_path):
        _, sharded, _, _ = run_pair("bank", tmp_path, bound=1, budget=40)
        schedules = [f.positions for f in sharded.failures]
        assert schedules == sorted(schedules)

    def test_jobs_is_not_part_of_the_identity(self, tmp_path):
        """jobs=2 and jobs=3 agree too — N is arbitrary, not just 1-vs-4."""
        a = run_explore_campaign("bank", bound=1, budget=30, jobs=2, config=CFG)
        b = run_explore_campaign("bank", bound=1, budget=30, jobs=3, config=CFG)
        assert a.digest() == b.digest()


class TestFaultsDifferential:
    def test_jobs1_equals_jobs4_and_serial(self, tmp_path):
        from repro.faults import run_campaign

        plan = FaultPlan.generate(3, 8)
        reference = run_campaign(
            plan, workload="bank", config=CFG, workdir=tmp_path / "serial"
        )
        serial = run_faults_campaign(plan, workload="bank", config=CFG, jobs=1)
        sharded = run_faults_campaign(plan, workload="bank", config=CFG, jobs=4)
        assert serial.digest() == reference.digest()
        assert sharded.digest() == reference.digest()
        assert serial.report.tally() == sharded.report.tally()

    def test_outcomes_keep_plan_order(self):
        plan = FaultPlan.generate(5, 6, layers=("trace",))
        sweep = run_faults_campaign(
            plan, workload="bank", layers=("trace",), config=CFG, jobs=3
        )
        assert [o.spec.index for o in sweep.report.outcomes] == list(range(6))

    def test_unreproducible_plan_is_rejected(self):
        """A hand-edited plan can't silently shard: workers regenerate
        from (seed, count, layers), so the wrapper refuses up front."""
        from repro.faults.plan import FaultSpec
        from repro.vm.errors import VMError

        plan = FaultPlan.generate(5, 4, layers=("trace",))
        plan.specs[0] = FaultSpec(index=0, kind="truncate", params=(0.5,))
        with pytest.raises(VMError, match="not reproducible"):
            run_faults_campaign(
                plan, workload="bank", layers=("trace",), config=CFG, jobs=2
            )
