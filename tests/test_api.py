"""The high-level API, the observer, and the replay verifier."""

import pytest

from repro.api import GuestProgram, build_vm, record, record_and_replay, replay
from repro.core.verify import ReplayReport, compare_runs
from repro.vm.errors import VMError
from repro.vm.machine import VMConfig
from repro.vm.observer import ExecutionObserver, first_divergence
from repro.vm.scheduler_types import RunResult
from repro.workloads import racy_bank
from tests.conftest import TEST_CONFIG, jitter_knobs


class TestGuestProgram:
    def test_from_source(self):
        program = GuestProgram.from_source(
            ".class Main\n.method static main ()V\n    return\n.end\n", name="t"
        )
        assert [cd.name for cd in program.classdefs] == ["Main"]
        assert program.main == "Main.main()V"

    def test_custom_main(self):
        src = ".class App\n.method static go ()V\n    return\n.end\n"
        program = GuestProgram.from_source(src, main="App.go()V")
        vm = build_vm(program, TEST_CONFIG)
        result = vm.run(program.main)
        assert not result.traps

    def test_main_signature_checked(self):
        src = ".class Main\n.method static main (I)V\n    return\n.end\n"
        program = GuestProgram.from_source(src, main="Main.main(I)V")
        vm = build_vm(program, TEST_CONFIG)
        with pytest.raises(VMError, match="main must be"):
            vm.run(program.main)

    def test_vm_single_run(self):
        vm = build_vm(racy_bank(), TEST_CONFIG)
        vm.run()
        with pytest.raises(VMError):
            vm.run()


class TestRecordReplayApi:
    def test_record_and_replay_tuple(self):
        session, replayed, report = record_and_replay(
            racy_bank(), config=TEST_CONFIG, **jitter_knobs(1)
        )
        assert isinstance(report, ReplayReport)
        assert report.faithful
        assert session.trace.meta["program"] == "racy_bank"

    def test_behavior_key_equality(self):
        session, replayed, _ = record_and_replay(
            racy_bank(), config=TEST_CONFIG, **jitter_knobs(2)
        )
        assert session.result.behavior_key() == replayed.behavior_key()

    def test_output_text_property(self):
        session = record(racy_bank(), config=TEST_CONFIG, **jitter_knobs(2))
        assert session.result.output_text == "".join(session.result.output)


class TestObserver:
    def test_disabled_observer_records_nothing(self):
        obs = ExecutionObserver(enabled=False)
        obs.emit("x", 1)
        assert len(obs) == 0

    def test_of_kind_filters(self):
        obs = ExecutionObserver()
        obs.emit("a", 1)
        obs.emit("b", 2)
        obs.emit("a", 3)
        assert obs.of_kind("a") == [("a", 1), ("a", 3)]

    def test_first_divergence(self):
        a = [("x", 1), ("y", 2)]
        assert first_divergence(a, list(a)) is None
        assert first_divergence(a, [("x", 1), ("y", 3)]) == 1
        assert first_divergence(a, [("x", 1)]) == 1
        assert first_divergence([], []) is None

    def test_observe_can_be_disabled_per_vm(self):
        cfg = VMConfig(semispace_words=40_000, observe=False)
        result = build_vm(racy_bank(), cfg).run()
        assert result.events == []
        assert result.output  # output still captured


class TestVerifier:
    def make_results(self):
        base = RunResult(
            output=["x"],
            cycles=10,
            switches=1,
            gc_count=0,
            traps=[],
            yieldpoints={0: 5},
            heap_digest="abc",
            events=[("output", "x")],
        )
        import copy

        return base, copy.deepcopy(base)

    def test_identical_is_faithful(self):
        a, b = self.make_results()
        assert compare_runs(a, b).faithful

    def test_event_divergence_located(self):
        a, b = self.make_results()
        b.events = [("output", "y")]
        report = compare_runs(a, b)
        assert not report.faithful
        assert report.first_event_divergence == 0
        assert report.record_event == ("output", "x")

    def test_each_witness_checked(self):
        for field, value in [
            ("output", ["y"]),
            ("cycles", 11),
            ("heap_digest", "zzz"),
            ("yieldpoints", {0: 6}),
            ("traps", [(0, "X", "x")]),
        ]:
            a, b = self.make_results()
            setattr(b, field, value)
            assert not compare_runs(a, b).faithful, field

    def test_assert_helper_raises(self):
        from repro.core import assert_faithful_replay
        from repro.vm.errors import ReplayDivergenceError

        a, b = self.make_results()
        assert_faithful_replay(a, b)
        b.cycles = 99
        with pytest.raises(ReplayDivergenceError):
            assert_faithful_replay(a, b)


class TestEventsModule:
    def test_kind_names(self):
        from repro.core import events as ev

        assert ev.kind_name(ev.K_SWITCH) == "SWITCH"
        assert ev.kind_name(ev.K_CLOCK) == "CLOCK"
        assert ev.kind_name(999) == "?999"

    def test_expect_kind_raises_with_position(self):
        from repro.core import events as ev
        from repro.vm.errors import ReplayDivergenceError

        ev.expect_kind(ev.K_CLOCK, ev.K_CLOCK, 5)  # ok
        with pytest.raises(ReplayDivergenceError) as exc:
            ev.expect_kind(ev.K_NATIVE, ev.K_CLOCK, 7)
        assert "position 7" in str(exc.value)
        assert "CLOCK" in str(exc.value) and "NATIVE" in str(exc.value)
