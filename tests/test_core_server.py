"""The shared daemon plumbing: :class:`repro.core.server.SocketServer`.

Three daemons ride this accept loop — the debugger server, the `repro
worker` campaign daemon, and the `repro serve` replay service — so its
hardening posture is tested once, here: a hostile connection costs
itself (never the loop), every survived failure ticks an observable
counter, per-connection lifetime is bounded, and shutdown is graceful,
signal-safe, and orphan-free.  The TERM'd-worker regression test pins
the graceful-stop satellite: a SIGTERM'd `repro worker` subprocess
drains and exits 0.
"""

import signal
import socket
import threading
import time

import pytest

from repro.campaign.remote import WorkerServer, spawn_worker_process
from repro.core.server import SocketServer, install_term_handler
from repro.debugger.frontend import DebuggerServer


def _connect(server, timeout=5.0):
    return socket.create_connection(server.address, timeout=timeout)


def _echo_handler(conn):
    conn.settimeout(0.2)
    while True:
        try:
            chunk = conn.recv(4096)
        except TimeoutError:
            continue
        except OSError:
            return
        if not chunk:
            return
        conn.sendall(chunk)


class TestSocketServer:
    def test_echo_roundtrip_and_counters(self):
        server = SocketServer(handler=_echo_handler, concurrency=4).start()
        try:
            with _connect(server) as a, _connect(server) as b:
                a.sendall(b"ping-a")
                b.sendall(b"ping-b")
                assert a.recv(64) == b"ping-a"
                assert b.recv(64) == b"ping-b"
            deadline = time.monotonic() + 5
            while server.connections_served < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.connections_served == 2
            assert server.handler_errors == 0
        finally:
            server.stop()

    def test_handler_error_costs_only_its_connection(self):
        logged = []

        def hostile(conn):
            chunk = conn.recv(4096)
            if chunk == b"boom":
                raise RuntimeError("hostile payload")
            conn.sendall(chunk)

        server = SocketServer(
            handler=hostile, concurrency=2, log=logged.append
        ).start()
        try:
            with _connect(server) as bad:
                bad.sendall(b"boom")
                assert bad.recv(64) == b""  # connection torn down
            # the loop survived: a well-behaved client still gets served
            with _connect(server) as good:
                good.sendall(b"fine")
                assert good.recv(64) == b"fine"
            deadline = time.monotonic() + 5
            while server.handler_errors < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.handler_errors == 1
            assert any("RuntimeError" in line for line in logged)
        finally:
            server.stop()

    def test_overstayer_is_reaped(self):
        server = SocketServer(
            handler=_echo_handler, concurrency=2, max_connection_seconds=0.3
        ).start()
        try:
            with _connect(server) as idle:
                idle.settimeout(5)
                # the accept loop shuts the connection down once it
                # exceeds its lifetime; our recv sees the close
                assert idle.recv(64) == b""
        finally:
            server.stop()

    def test_request_stop_is_prompt_and_stop_leaves_no_threads(self):
        before = {t.name for t in threading.enumerate()}
        server = SocketServer(handler=_echo_handler, concurrency=4).start()
        with _connect(server) as conn:
            conn.sendall(b"x")
            assert conn.recv(16) == b"x"
            server.request_stop()  # signal-safe: flag + closed listener
            assert server.stopping
        server.stop()
        with pytest.raises(OSError):
            _connect(server, timeout=0.5)
        leftover = {t.name for t in threading.enumerate()} - before
        assert not leftover, f"orphaned threads: {leftover}"

    def test_install_term_handler_refuses_off_main_thread(self):
        results = []
        thread = threading.Thread(
            target=lambda: results.append(install_term_handler(lambda: None))
        )
        thread.start()
        thread.join()
        assert results == [False]


class TestRebasedDaemons:
    """The worker and debugger daemons now subclass SocketServer: same
    hardened loop, same counters, same graceful stop."""

    def test_subclass_relationship(self):
        assert issubclass(WorkerServer, SocketServer)
        assert issubclass(DebuggerServer, SocketServer)

    def test_worker_server_stop_leaves_no_threads(self):
        before = {t.name for t in threading.enumerate()}
        server = WorkerServer().start()
        assert server.connections_served == 0
        server.stop()
        leftover = {t.name for t in threading.enumerate()} - before
        assert not leftover, f"orphaned threads: {leftover}"

    def test_terminated_worker_exits_zero(self):
        """The graceful-stop satellite: a SIGTERM'd `repro worker`
        drains (heartbeat pump joined, runners closed) and exits 0."""
        proc, address = spawn_worker_process()
        try:
            # it really is serving before the TERM lands
            with socket.create_connection(address, timeout=5):
                pass
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            proc.kill()
            proc.wait(timeout=10)
            if proc.stdout is not None:
                proc.stdout.close()

    def test_terminated_debug_serve_exits_zero(self, tmp_path):
        """Same contract for the third daemon: a SIGTERM'd
        `repro debug-serve` stops its accept loop and exits 0."""
        import os
        import subprocess
        import sys

        import repro
        from repro.cli import main as cli_main

        trace = tmp_path / "t.djv"
        assert cli_main(
            ["record", "--workload", "bank", "--seed", "7", "-o", str(trace)]
        ) == 0
        env = dict(os.environ)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "debug-serve",
                "--workload", "bank", str(trace), "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline().strip()
            assert "debugger serving on " in line, line
            host, port = line.split("serving on ", 1)[1].rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=5):
                pass
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            proc.kill()
            proc.wait(timeout=10)
            if proc.stdout is not None:
                proc.stdout.close()
