"""The v3 on-disk trace format: framing, crash consistency, compatibility.

Covers the format's three contracts:

* **integrity** — every byte of a sealed trace is covered by a segment
  CRC or the header/footer checks, so any single-byte damage is detected
  at load;
* **crash consistency** — a recording that dies mid-run leaves a tmp
  file whose intact segment prefix salvages into a replayable trace;
* **invisibility** — the framing is a host-side concern: recordings are
  deterministic, byte-identical across engine toggle combinations, and
  v2 traces still load and replay.

The seeded fuzz sweeps (marked ``fuzz``) run in the CI faults-smoke job.
"""

import random

import pytest

from repro.api import record, replay, replay_prefix
from repro.core.tracelog import (
    FORMAT_VERSION,
    MAGIC,
    TraceLog,
    TraceWriter,
    decode_words,
    encode_words,
    read_varint,
    write_varint,
)
from repro.faults.inject import segment_boundaries
from repro.vm import SeededJitterTimer
from repro.vm.engineconfig import EngineConfig
from repro.vm.errors import TraceFormatError
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank

CFG = VMConfig(semispace_words=60_000)
_HEADER = len(MAGIC) + 2


def _program():
    return racy_bank(tellers=2, deposits=8)


def _record_to(path, config=CFG):
    return record(
        _program(), config=config, timer=SeededJitterTimer(5, 40, 160), out=path
    )


class TestV3Layout:
    def test_sealed_file_walks_as_segments_with_footer_last(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path)
        blob = path.read_bytes()
        assert blob[:4] == MAGIC
        assert int.from_bytes(blob[4:6], "little") == FORMAT_VERSION
        bounds = segment_boundaries(blob)
        assert bounds and bounds[-1] == len(blob)  # footer closes the file
        assert blob[bounds[-2] if len(bounds) > 1 else _HEADER : bounds[-1]][:1] == b"F"

    def test_no_tmp_left_after_clean_seal(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path)
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_trace_info_meta_round_trips(self, tmp_path):
        path = tmp_path / "t.djv"
        session = _record_to(path)
        loaded = TraceLog.load(path)
        assert loaded.switches == session.trace.switches
        assert loaded.values == session.trace.values
        assert loaded.meta["config"] == session.trace.meta["config"]
        assert not loaded.truncated


class TestReadVarintErrors:
    def test_truncated_final_varint_names_stream_and_offset(self):
        words = [7, -3, 1 << 40]  # the last one needs several bytes
        blob = encode_words(words)
        with pytest.raises(TraceFormatError) as exc_info:
            decode_words(blob[:-1], stream="value")
        exc = exc_info.value
        assert exc.stream == "value"
        assert exc.offset is not None
        assert f"@byte {exc.offset}" in str(exc)
        # the offset points at the varint that got torn, inside the blob
        assert 0 <= exc.offset < len(blob)

    def test_read_varint_offset_is_varint_start(self):
        out = bytearray()
        write_varint(out, 300)  # two bytes
        with pytest.raises(TraceFormatError) as exc_info:
            read_varint(bytes(out[:1]), 0, stream="switch")
        assert exc_info.value.offset == 0
        assert exc_info.value.stream == "switch"


class TestCrashConsistency:
    def test_abandoned_writer_leaves_salvageable_tmp(self, tmp_path):
        path = tmp_path / "t.djv"
        writer = TraceWriter(path, segment_words=4)
        for w in range(10):  # two full segments spill, 2 words stay buffered
            writer.switch_sink.append(w)
        writer.abandon()
        assert not path.exists()
        trace = TraceLog.salvage(writer.tmp_path)
        assert trace.truncated
        assert trace.switches == list(range(8))  # the flushed prefix
        assert not trace.salvage_report.sealed

    def test_salvaged_prefix_is_replayable(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path)
        blob = path.read_bytes()
        # cut mid-way through the file, like a crash or torn copy
        torn = tmp_path / "torn.djv"
        torn.write_bytes(blob[: len(blob) * 2 // 3])
        trace = TraceLog.salvage(torn)
        assert trace.truncated
        prefix = replay_prefix(_program(), trace, config=CFG)
        assert prefix.result is not None

    def test_salvage_of_sealed_trace_is_not_truncated(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path)
        trace = TraceLog.salvage(path)
        assert not trace.truncated
        assert trace.salvage_report.sealed


class TestEngineComboSymmetry:
    """The acceptance bar: v3 recording is deterministic and engine
    toggles never leak into the trace."""

    def test_recording_is_byte_deterministic_per_combo(self, tmp_path):
        for i, engine in enumerate(EngineConfig.all_combinations()):
            config = VMConfig(semispace_words=60_000, engine=engine)
            a, b = tmp_path / f"a{i}.djv", tmp_path / f"b{i}.djv"
            _record_to(a, config)
            _record_to(b, config)
            assert a.read_bytes() == b.read_bytes(), engine.describe()

    def test_files_identical_across_all_8_combos_and_replay(self, tmp_path):
        reference = None
        for i, engine in enumerate(EngineConfig.all_combinations()):
            config = VMConfig(semispace_words=60_000, engine=engine)
            path = tmp_path / f"c{i}.djv"
            session = _record_to(path, config)
            blob = path.read_bytes()
            if reference is None:
                reference = blob
            else:
                # the whole file, framing and footer included, is
                # byte-identical: engine toggles never leak into a trace
                assert blob == reference, engine.describe()
            # and the combo replays its own recording faithfully
            trace = TraceLog.load(path)
            result = replay(_program(), trace, config=config)
            assert result.heap_digest == session.result.heap_digest


class TestV2Compat:
    def test_v2_trace_still_loads_and_replays(self, tmp_path):
        session = record(
            _program(), config=CFG, timer=SeededJitterTimer(5, 40, 160)
        )
        path = tmp_path / "old.djv"
        session.trace.save_v2(path)
        loaded = TraceLog.load(path)
        assert loaded.meta["format_version"] == 2
        assert loaded.switches == session.trace.switches
        result = replay(_program(), loaded, config=CFG)
        assert result.heap_digest == session.result.heap_digest


# ---------------------------------------------------------------------------
# seeded fuzz sweeps (CI faults-smoke job: pytest -m fuzz)


@pytest.mark.fuzz
class TestFuzzSweeps:
    def test_random_sequences_roundtrip(self, tmp_path):
        rng = random.Random(1234)
        for case in range(50):
            switches = [
                rng.randrange(-(1 << 34), 1 << 34)
                for _ in range(rng.randrange(0, 200))
            ]
            values = [
                rng.randrange(-(1 << 62), 1 << 62)
                for _ in range(rng.randrange(0, 200))
            ]
            trace = TraceLog(switches=switches, values=values, meta={"case": case})
            path = tmp_path / "fuzz.djv"
            trace.save(path)
            loaded = TraceLog.load(path)
            assert loaded.switches == switches
            assert loaded.values == values

    def test_single_byte_corruption_at_every_segment_boundary(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path)
        blob = path.read_bytes()
        bounds = segment_boundaries(blob)
        positions = set()
        for b in bounds:
            positions.update(p for p in (b - 1, b, b + 1) if 0 <= p < len(blob))
        positions.update((_HEADER - 1, _HEADER, _HEADER + 1))
        bad = tmp_path / "bad.djv"
        for pos in sorted(positions):
            damaged = bytearray(blob)
            damaged[pos] ^= 0x41
            bad.write_bytes(bytes(damaged))
            with pytest.raises(TraceFormatError):
                TraceLog.load(bad)

    def test_truncation_at_every_17th_byte_salvages_replayable_prefix(
        self, tmp_path
    ):
        path = tmp_path / "t.djv"
        _record_to(path)
        blob = path.read_bytes()
        torn = tmp_path / "torn.djv"
        for cut in range(_HEADER, len(blob), 17):
            torn.write_bytes(blob[:cut])
            trace = TraceLog.salvage(torn)
            assert trace.truncated
            prefix = replay_prefix(_program(), trace, config=CFG)
            assert prefix.result is not None
