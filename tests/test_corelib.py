"""Core-library edge cases and guest-visible runtime invariants."""

import pytest

from repro.api import record_and_replay
from repro.vm.machine import VMConfig
from repro.workloads.readers_writers import expected_sum, readers_writers
from tests.conftest import TEST_CONFIG, jitter_knobs, run_source


class TestStringIdentity:
    def test_ldc_interning_gives_reference_equality(self):
        src = """.class Main
.method static main ()V
    ldc "shared"
    ldc "shared"
    if_acmpeq same
    ldc "DIFFERENT"
    invokestatic System.print(LString;)V
    return
same:
    ldc "same"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "same"

    def test_interning_shared_across_classes(self):
        src = """.class A
.method static get ()LString;
    ldc "xyz"
    areturn
.end
.class Main
.method static main ()V
    invokestatic A.get()LString;
    ldc "xyz"
    if_acmpeq same
    ldc "0"
    invokestatic System.print(LString;)V
    return
same:
    ldc "1"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "1"

    def test_string_equals_vs_identity(self):
        src = """.class Main
.method static main ()V
    new String
    astore 0
    aload 0
    iconst 2
    newarray
    putfield String.chars [I
    aload 0
    getfield String.chars [I
    iconst 0
    iconst 104
    iastore
    aload 0
    getfield String.chars [I
    iconst 1
    iconst 105
    iastore
    aload 0
    ldc "hi"
    invokevirtual String.equals(LString;)I
    invokestatic System.printInt(I)V
    aload 0
    ldc "hi"
    if_acmpne diff
    ldc "ERR"
    invokestatic System.print(LString;)V
    return
diff:
    ldc "d"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "1d"

    def test_equals_null_and_length_mismatch(self):
        src = """.class Main
.method static main ()V
    ldc "abc"
    aconst_null
    invokevirtual String.equals(LString;)I
    invokestatic System.printInt(I)V
    ldc "abc"
    ldc "abcd"
    invokevirtual String.equals(LString;)I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "00"


class TestStringBuilderGrowth:
    def test_growth_past_initial_capacity(self):
        # append 40 chars: forces at least one ensure() growth (cap 16)
        src = """.class Main
.method static main ()V
    new StringBuilder
    dup
    invokevirtual StringBuilder.init()V
    astore 0
    iconst 0
    istore 1
loop:
    iload 1
    iconst 40
    if_icmpge out
    aload 0
    iconst 97
    iload 1
    iconst 26
    irem
    iadd
    invokevirtual StringBuilder.appendChar(I)V
    iinc 1 1
    goto loop
out:
    aload 0
    invokevirtual StringBuilder.toStringObj()LString;
    invokevirtual String.length()I
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "40"

    def test_append_int_min_like_values(self):
        src = """.class Main
.method static main ()V
    new StringBuilder
    dup
    invokevirtual StringBuilder.init()V
    astore 0
    aload 0
    iconst -2147483647
    invokevirtual StringBuilder.appendInt(I)V
    aload 0
    invokevirtual StringBuilder.toStringObj()LString;
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "-2147483647"


class TestObjectInit:
    def test_object_init_callable(self):
        src = """.class Main
.method static main ()V
    new Object
    invokevirtual Object.init()V
    ldc "ok"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "ok"

    def test_thread_gettid_virtual(self):
        src = """.class Main
.method static main ()V
    new Thread
    invokevirtual Thread.getTid()I
    invokestatic System.printInt(I)V
    return
.end
"""
        # an unstarted Thread object has tid field 0 (never assigned)
        assert run_source(src).output_text == "0"


class TestReadersWriters:
    def test_sum_matches_closed_form(self):
        from repro.api import build_vm
        from repro.vm import SeededJitterTimer

        program = readers_writers(n_readers=2, n_writers=2, rounds=5)
        vm = build_vm(program, VMConfig(semispace_words=80_000), timer=SeededJitterTimer(4, 30, 140))
        result = vm.run(program.main)
        assert f"sum={expected_sum(2, 2, 5)}" in result.output_text
        assert not result.deadlocked

    def test_replays_across_seeds(self):
        for seed in (2, 9):
            _, _, report = record_and_replay(
                readers_writers(),
                config=VMConfig(semispace_words=80_000),
                **jitter_knobs(seed, 30, 140),
            )
            assert report.faithful, report.detail

    def test_writer_exclusion_invariant(self):
        """Readers never observe a half-applied write round: every snapshot
        xor'd into `seen` is a multiple of the table-slot count pattern."""
        from repro.api import build_vm
        from repro.vm import SeededJitterTimer

        program = readers_writers(n_readers=3, n_writers=1, rounds=6)
        vm = build_vm(program, VMConfig(semispace_words=80_000), timer=SeededJitterTimer(8, 25, 100))
        result = vm.run(program.main)
        # with a single writer of stride 1, any consistent snapshot sum is
        # slots * k for some k; torn reads would xor odd garbage in. we
        # can't decode xor history, but the run must complete race-free:
        assert f"sum={expected_sum(3, 1, 6)}" in result.output_text
