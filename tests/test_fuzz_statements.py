"""Statement-level fuzzing: random structured MiniJ programs, three oracles.

Programs are built from a guaranteed-terminating statement grammar
(bounded ``for`` loops, branches, int locals, one int array) and run on

1. the compiled engine,
2. the tool-VM bytecode interpreter, and
3. a direct Python evaluator over the generator's own IR,

all of which must produce the same final checksum.  This exercises the
MiniJ code generator's control flow (label placement, completion
analysis, scoping) far beyond the expression fuzzer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GuestProgram, build_vm
from repro.lang import compile_source
from repro.remote import DebugPort, ToolInterpreter
from repro.vm import VirtualMachine, words
from repro.vm.machine import VMConfig

CFG = VMConfig(semispace_words=60_000)

N_LOCALS = 3
ARRAY_LEN = 5

# --- the statement IR --------------------------------------------------------
# stmt := ("set", var_idx, expr)
#       | ("arr", index_expr, expr)
#       | ("if", expr, [stmt], [stmt])
#       | ("for", count(1..4), [stmt])          # loop var not exposed
# expr := ("lit", n) | ("var", i) | ("aref", expr)
#       | ("bin", op, expr, expr)

_OPS = {
    "+": words.iadd,
    "-": words.isub,
    "*": words.imul,
    "^": words.ixor,
    "&": words.iand,
}


def _exprs():
    leaf = st.one_of(
        st.integers(-50, 50).map(lambda n: ("lit", n)),
        st.integers(0, N_LOCALS - 1).map(lambda i: ("var", i)),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.just("aref"), children),
            st.tuples(st.just("bin"), st.sampled_from(sorted(_OPS)), children, children),
        )

    return st.recursive(leaf, extend, max_leaves=6)


def _stmts(depth: int = 2):
    expr = _exprs()
    base = st.one_of(
        st.tuples(st.just("set"), st.integers(0, N_LOCALS - 1), expr),
        st.tuples(st.just("arr"), expr, expr),
    )
    if depth == 0:
        return st.lists(base, min_size=0, max_size=3)
    inner = _stmts(depth - 1)
    compound = st.one_of(
        st.tuples(st.just("if"), expr, inner, inner),
        st.tuples(st.just("for"), st.integers(1, 3), inner),
    )
    return st.lists(st.one_of(base, compound), min_size=1, max_size=4)


# --- renderer (IR -> MiniJ) --------------------------------------------------


def _render_expr(e) -> str:
    kind = e[0]
    if kind == "lit":
        return f"({e[1]})" if e[1] < 0 else str(e[1])
    if kind == "var":
        return f"v{e[1]}"
    if kind == "aref":
        return f"arr[Main.clampIndex({_render_expr(e[1])})]"
    _, op, l, r = e
    return f"(({_render_expr(l)}) {op} ({_render_expr(r)}))"


def _render_stmts(stmts, indent: str, loop_depth: int) -> list[str]:
    lines: list[str] = []
    for s in stmts:
        kind = s[0]
        if kind == "set":
            lines.append(f"{indent}v{s[1]} = {_render_expr(s[2])};")
        elif kind == "arr":
            lines.append(
                f"{indent}arr[Main.clampIndex({_render_expr(s[1])})] = "
                f"{_render_expr(s[2])};"
            )
        elif kind == "if":
            lines.append(f"{indent}if (({_render_expr(s[1])}) > 0) {{")
            lines.extend(_render_stmts(s[2], indent + "    ", loop_depth))
            lines.append(f"{indent}}} else {{")
            lines.extend(_render_stmts(s[3], indent + "    ", loop_depth))
            lines.append(f"{indent}}}")
        elif kind == "for":
            var = f"k{loop_depth}"
            lines.append(f"{indent}for (int {var} = 0; {var} < {s[1]}; {var}++) {{")
            lines.extend(_render_stmts(s[2], indent + "    ", loop_depth + 1))
            lines.append(f"{indent}}}")
    return lines


def render_program(stmts) -> str:
    body = "\n".join(_render_stmts(stmts, "        ", 0))
    return f"""
class Main {{
    static int clampIndex(int i) {{
        int m = i % {ARRAY_LEN};
        if (m < 0) m = m + {ARRAY_LEN};
        return m;
    }}
    static int run() {{
        int v0 = 1;
        int v1 = 2;
        int v2 = 3;
        int[] arr = new int[{ARRAY_LEN}];
{body}
        int sum = v0 ^ (v1 * 31) ^ (v2 * 1009);
        for (int i = 0; i < {ARRAY_LEN}; i++) sum = sum ^ (arr[i] * (i + 7));
        return sum;
    }}
    static void main() {{
        System.printInt(Main.run());
    }}
}}
"""


# --- the reference evaluator over the IR -----------------------------------


def reference_eval(stmts) -> int:
    env = {"v": [1, 2, 3], "arr": [0] * ARRAY_LEN}

    def clamp(i: int) -> int:
        m = words.irem(i, ARRAY_LEN)
        return m + ARRAY_LEN if m < 0 else m

    def ev(e) -> int:
        kind = e[0]
        if kind == "lit":
            return words.to_i32(e[1])
        if kind == "var":
            return env["v"][e[1]]
        if kind == "aref":
            return env["arr"][clamp(ev(e[1]))]
        _, op, l, r = e
        return _OPS[op](ev(l), ev(r))

    def run(block) -> None:
        for s in block:
            kind = s[0]
            if kind == "set":
                env["v"][s[1]] = ev(s[2])
            elif kind == "arr":
                # MiniJ evaluates the target index before the value
                idx = clamp(ev(s[1]))
                env["arr"][idx] = ev(s[2])
            elif kind == "if":
                run(s[2] if ev(s[1]) > 0 else s[3])
            elif kind == "for":
                for _ in range(s[1]):
                    run(s[2])

    run(stmts)
    v = env["v"]
    total = words.ixor(words.ixor(v[0], words.imul(v[1], 31)), words.imul(v[2], 1009))
    for i, x in enumerate(env["arr"]):
        total = words.ixor(total, words.imul(x, i + 7))
    return total


class TestStatementFuzz:
    @settings(max_examples=60, deadline=None)
    @given(_stmts())
    def test_three_way_agreement(self, stmts):
        expected = reference_eval(stmts)
        source = render_program(stmts)
        classdefs = compile_source(source)

        program = GuestProgram(classdefs=classdefs, name="stmtfuzz")
        vm = build_vm(program, CFG)
        result = vm.run()
        assert not result.traps, (result.traps, source)
        assert int(result.output_text) == expected, source

        vm2 = VirtualMachine(CFG)
        vm2.declare(compile_source(source))
        tool = ToolInterpreter(vm2, DebugPort(vm2))
        assert words.to_i32(tool.call("Main.run()I", [])) == expected, source

    @settings(max_examples=20, deadline=None)
    @given(_stmts(), st.integers(0, 2**32 - 1))
    def test_fuzzed_programs_replay(self, stmts, seed):
        from repro.api import record_and_replay
        from tests.conftest import jitter_knobs

        program = GuestProgram(
            classdefs=compile_source(render_program(stmts)), name="stmtfuzz"
        )
        _, _, report = record_and_replay(program, config=CFG, **jitter_knobs(seed, 10, 80))
        assert report.faithful, report.detail
