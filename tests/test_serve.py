"""`repro serve`: the supervised, long-lived replay service.

The daemon's contract has three load-bearing claims, each pinned here:

* **Byte-identity**: a job served from the warm daemon returns stdout
  (and, for record, trace bytes) byte-identical to the CLI one-shot —
  across every engine preset and all 8 dispatch-flag combinations, and
  identically warm or cold.  Warm sessions may change latency, never
  results.
* **Robustness envelope**: typed validation (poison jobs answer with a
  :class:`ServeError`, never a traceback), bounded admission (a full
  queue answers ``overloaded`` + ``retry_after``), cooperative deadlines
  (an infinite guest loop lands in :class:`JobDeadlineExceeded` at an
  engine safe point), warm→cold degradation, and worker supervision
  (``SystemExit`` kills a worker; the client still gets a typed answer
  and the fleet heals).
* **Graceful drain**: SIGTERM (or the ``drain`` op) stops admission,
  finishes and delivers every accepted job, and exits 0 — zero accepted
  jobs lost.
"""

import signal
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.core.framing import BackoffPolicy
from repro.serve import (
    JobDeadlineExceeded,
    JobRejected,
    ServeClient,
    ServeDaemon,
    ServeError,
    SessionPool,
    Supervisor,
    spawn_serve_process,
    validate_job,
)
from repro.serve.protocol import (
    SERVE_PROTOCOL_VERSION,
    JobCancelled,
    TransportError,
    decode_serve_payload,
    encode_serve_message,
)
from repro.serve.supervisor import CancelToken
from repro.vm.engineconfig import EngineConfig

ALL_ENGINES = EngineConfig.all_combinations()
PRESETS = ("baseline", "threaded", "fused", "full")

#: an infinite guest loop that still reaches engine safe points: the
#: loop *body* executes the backedge yield point every iteration (a bare
#: ``loop: goto loop`` would jump back past its own yield point and
#: never preempt — see the compiler's backedge emission order)
HUNG_SRC = """\
.class Main
.method static main ()V
    iconst 0
    istore 0
loop:
    iload 0
    iconst 1
    iadd
    istore 0
    goto loop
.end
"""

TINY_SRC = """\
.class Main
.method static main ()V
    ldc "{word}"
    invokestatic System.print(LString;)V
    return
.end
"""


def record_job(seed=7, engine="full", out_name="run.djv", **extra):
    job = {
        "kind": "record",
        "workload": "bank",
        "workload_args": {},
        "seed": seed,
        "engine": engine,
        "out_name": out_name,
    }
    job.update(extra)
    return job


@pytest.fixture(scope="module")
def daemon():
    d = ServeDaemon(workers=2, queue_limit=8).start()
    yield d
    d.stop()


@pytest.fixture(scope="module")
def reference(daemon):
    """One warm record run: the trace + stdout every differential
    test compares against."""
    with ServeClient(daemon.address) as client:
        result = client.submit(record_job())
    assert result["exit"] == 0
    return result


def run_cli(argv, capsys):
    code = cli_main(argv)
    cap = capsys.readouterr()
    return code, cap.out, cap.err


# ---------------------------------------------------------------------------
# protocol units


class TestValidateJob:
    def test_non_dict_is_typed(self):
        with pytest.raises(ServeError, match="must be a dict"):
            validate_job(["record"])

    def test_unknown_kind(self):
        with pytest.raises(ServeError, match="unknown job kind"):
            validate_job({"kind": "transmogrify"})

    def test_bad_seed_heap_deadline(self):
        with pytest.raises(ServeError, match="seed"):
            validate_job(record_job(seed="seven"))
        with pytest.raises(ServeError, match="heap"):
            validate_job(record_job(heap=0))
        with pytest.raises(ServeError, match="deadline"):
            validate_job(record_job(deadline=-1))
        with pytest.raises(ServeError, match="deadline"):
            validate_job(record_job(deadline="soon"))

    def test_record_needs_a_program(self):
        with pytest.raises(ServeError, match="'workload' name or 'source'"):
            validate_job({"kind": "record"})

    def test_replay_needs_trace_bytes(self):
        with pytest.raises(ServeError, match="sealed trace bytes"):
            validate_job({"kind": "replay", "workload": "bank"})
        with pytest.raises(ServeError, match="sealed trace bytes"):
            validate_job({"kind": "replay", "workload": "bank", "trace": ""})

    def test_unknown_engine_preset_and_flags(self):
        with pytest.raises(ServeError, match="unknown engine preset"):
            validate_job(record_job(engine="warp"))
        with pytest.raises(ServeError, match="unknown engine flag"):
            validate_job(record_job(engine={"jit": True}))
        with pytest.raises(ServeError, match="preset name or a flag dict"):
            validate_job(record_job(engine=3))

    def test_defaults_are_filled(self):
        job = validate_job({"kind": "record", "workload": "bank"})
        assert job["engine"] == "full"
        assert job["heap"] == 400_000
        assert job["seed"] is None
        assert job["deadline"] is None
        assert job["out_name"] == "run.djv"


# ---------------------------------------------------------------------------
# the warm-session pool


class TestSessionPool:
    def test_explicit_and_implicit_defaults_share_one_entry(self):
        from repro.workloads.registry import get_workload

        pool = SessionPool()
        implicit = {"workload": "bank", "workload_args": {}}
        explicit = {
            "workload": "bank",
            "workload_args": dict(get_workload("bank").defaults),
        }
        a = pool.program(implicit)
        b = pool.program(explicit)
        assert a is b  # keyed on *resolved* kwargs, not the spelling
        stats = pool.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_invalidate_rebuilds_instead_of_reusing(self):
        pool = SessionPool()
        job = {"workload": "bank", "workload_args": {}}
        first = pool.program(job)
        pool.invalidate()
        second = pool.program(job)
        assert first is not second  # a crashed session is replaced
        stats = pool.stats()
        assert stats["generation"] == 1
        assert stats["rebuilds"] == 1
        assert stats["invalidations"] == 1

    def test_lru_eviction_is_bounded(self):
        pool = SessionPool(max_entries=2)
        jobs = [
            {"source": TINY_SRC.format(word=w), "main": "Main.main()V", "name": w}
            for w in ("alpha", "beta", "gamma")
        ]
        for job in jobs:
            pool.program(job)
        assert pool.stats()["programs"] == 2
        pool.program(jobs[0])  # evicted: a fresh miss, not a hit
        assert pool.stats()["misses"] == 4

    def test_trace_cache_hits_on_content(self, reference):
        pool = SessionPool()
        a = pool.trace(reference["trace"])
        b = pool.trace(bytes(reference["trace"]))
        assert a is b
        stats = pool.stats()
        assert stats["traces"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1


# ---------------------------------------------------------------------------
# cancellation tokens


class TestCancelToken:
    def test_deadline_fires_on_the_injected_clock(self):
        clk = [0.0]
        token = CancelToken(5.0, clock=lambda: clk[0])
        token.check()  # inside budget: silent
        clk[0] = 5.01
        with pytest.raises(JobDeadlineExceeded, match="5s deadline"):
            token.check()

    def test_cancel_wins_over_everything(self):
        token = CancelToken(None)
        token.check()
        token.cancel()
        with pytest.raises(JobCancelled):
            token.check()

    def test_install_is_the_safepoint_hook_seam(self):
        class Engine:
            safepoint_hook = None

        class VM:
            engine = Engine()

        vm = VM()
        token = CancelToken(1.0)
        token.install(vm)
        assert vm.engine.safepoint_hook == token.check


# ---------------------------------------------------------------------------
# the supervisor (stub executors: the envelope, isolated from the VM)


class TestSupervisor:
    def test_overloaded_rejection_is_typed_with_retry_hint(self):
        gate = threading.Event()

        def blocking(job, pool, token):
            gate.wait(10)
            return {"done": True}

        sup = Supervisor(None, workers=1, queue_limit=1, executor=blocking)
        try:
            first = sup.submit({"deadline": None})
            with pytest.raises(JobRejected) as exc:
                sup.submit({"deadline": None})
            assert exc.value.reason == "overloaded"
            assert exc.value.retry_after > 0
            assert sup.jobs_rejected == 1
            gate.set()
            assert first.wait(10)["ok"] is True
        finally:
            gate.set()
            sup.shutdown(grace=5)

    def test_draining_rejects_new_admissions(self):
        sup = Supervisor(None, workers=1, executor=lambda j, p, t: {})
        try:
            assert sup.drain(grace=5)
            with pytest.raises(JobRejected) as exc:
                sup.submit({"deadline": None})
            assert exc.value.reason == "draining"
        finally:
            sup.shutdown(grace=5)

    def test_warm_failure_degrades_to_cold_and_invalidates(self):
        warm = SessionPool()

        def flaky(job, pool, token):
            if pool is warm:
                raise RuntimeError("warm session state corrupt")
            return {"ran": "cold"}

        sup = Supervisor(warm, workers=1, executor=flaky)
        try:
            reply = sup.submit({"deadline": None}).wait(10)
            assert reply["ok"] is True
            assert reply["result"] == {"ran": "cold"}
            assert sup.degraded_cold == 1
            # the suspect warm state was invalidated, not trusted
            assert warm.stats()["invalidations"] == 1
            assert warm.stats()["generation"] == 1
        finally:
            sup.shutdown(grace=5)

    def test_two_strikes_is_a_typed_diagnostic(self):
        def doomed(job, pool, token):
            raise ValueError("bad everywhere")

        sup = Supervisor(SessionPool(), workers=1, executor=doomed)
        try:
            reply = sup.submit({"deadline": None}).wait(10)
            assert reply["ok"] is False
            assert reply["error"]["type"] == "ServeError"
            assert "failed warm and cold" in reply["error"]["detail"]
            assert "ValueError" in reply["error"]["detail"]
        finally:
            sup.shutdown(grace=5)

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_systemexit_kills_the_worker_not_the_client(self):
        def crashy(job, pool, token):
            if job.get("die"):
                raise SystemExit(3)
            return {"alive": True}

        sup = Supervisor(None, workers=1, executor=crashy)
        try:
            reply = sup.submit({"deadline": None, "die": True}).wait(10)
            # the dying worker's finally block still delivered an answer
            assert reply["ok"] is False
            assert "worker crashed mid-job" in reply["error"]["detail"]
            # the reply is delivered from the dying worker's finally
            # block, so the thread may still be unwinding; poll until
            # ensure_workers observes the death
            deadline = time.monotonic() + 10
            while sup.worker_restarts < 1 and time.monotonic() < deadline:
                sup.ensure_workers()
                time.sleep(0.01)
            assert sup.worker_restarts >= 1
            healed = sup.submit({"deadline": None}).wait(10)
            assert healed["ok"] is True and healed["result"] == {"alive": True}
        finally:
            sup.shutdown(grace=5)

    def test_queued_job_past_deadline_never_runs(self):
        clk = [0.0]
        gate = threading.Event()

        def exec_(job, pool, token):
            if job.get("block"):
                gate.wait(10)
                return {}
            raise AssertionError("a dead-on-arrival job was executed")

        sup = Supervisor(
            None, workers=1, executor=exec_, clock=lambda: clk[0]
        )
        try:
            # the single worker is busy, so the doomed job sits queued
            # while the injected clock runs past its deadline
            blocker = sup.submit({"deadline": None, "block": True})
            doomed = sup.submit({"deadline": 0.001})
            clk[0] = 1.0
            gate.set()
            assert blocker.wait(10)["ok"] is True
            reply = doomed.wait(10)
            assert reply["ok"] is False
            assert reply["error"]["type"] == "JobDeadlineExceeded"
        finally:
            gate.set()
            sup.shutdown(grace=5)

    def test_drain_finishes_every_accepted_job(self):
        def slow(job, pool, token):
            time.sleep(0.05)
            return {"n": job["n"]}

        sup = Supervisor(None, workers=2, queue_limit=8, executor=slow)
        try:
            pendings = [
                sup.submit({"deadline": None, "n": i}) for i in range(5)
            ]
            assert sup.drain(grace=30) is True
            replies = [p.wait(1) for p in pendings]
            assert [r["ok"] for r in replies] == [True] * 5
            assert sorted(r["result"]["n"] for r in replies) == list(range(5))
            assert sup.jobs_completed == 5
        finally:
            sup.shutdown(grace=5)


# ---------------------------------------------------------------------------
# daemon end-to-end: handshake, ops, byte-identity


class TestDaemonProtocol:
    def test_hello_version_mismatch_is_refused(self, daemon):
        with socket.create_connection(daemon.address, timeout=5) as sock:
            sock.sendall(encode_serve_message({"op": "hello", "version": 999}))
            sock.settimeout(5)
            reply = _read_reply(sock)
            assert reply["op"] == "error"
            assert "protocol version mismatch" in reply["detail"]

    def test_ping_health_and_unknown_op(self, daemon):
        with ServeClient(daemon.address) as client:
            assert client.daemon_pid is not None
            assert client.ping()
            health = client.health()
            assert health["state"] == "ready"
            assert health["warm"] is True
            assert health["supervisor"]["workers"] >= 1
            assert "sessions" in health
            reply = client.request({"op": "transmogrify"})
            assert reply["op"] == "error"
            assert "unknown op" in reply["detail"]

    def test_poison_submit_is_in_band_not_a_teardown(self, daemon):
        with ServeClient(daemon.address) as client:
            with pytest.raises(ServeError, match="unknown job kind"):
                client.submit({"kind": "transmogrify"})
            # same connection still serves real work afterwards
            assert client.ping()


def _read_reply(sock):
    from repro.serve.protocol import MAX_SERVE_FRAME_BYTES, FrameDecoder

    decoder = FrameDecoder(MAX_SERVE_FRAME_BYTES)
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError("daemon closed without replying")
        frames = decoder.feed(chunk)
        if frames:
            return decode_serve_payload(frames[0])


class TestByteIdentity:
    """The differential guarantee: daemon output == CLI one-shot output,
    byte for byte."""

    @pytest.mark.parametrize("preset", PRESETS)
    def test_record_matches_cli_across_presets(
        self, daemon, preset, tmp_path, capsys
    ):
        out = str(tmp_path / f"{preset}.djv")
        code, cli_stdout, _ = run_cli(
            ["record", "--workload", "bank", "--seed", "7",
             "--engine", preset, "-o", out],
            capsys,
        )
        assert code == 0
        result = _submit(daemon, record_job(engine=preset, out_name=out))
        assert result["exit"] == 0 and result["stderr"] == ""
        assert result["stdout"] == cli_stdout
        assert result["trace"] == Path(out).read_bytes()

    @pytest.mark.parametrize("preset", PRESETS)
    def test_replay_matches_cli_across_presets(
        self, daemon, preset, tmp_path, capsys
    ):
        out = str(tmp_path / f"{preset}.djv")
        run_cli(
            ["record", "--workload", "bank", "--seed", "7",
             "--engine", preset, "-o", out],
            capsys,
        )
        code, cli_stdout, _ = run_cli(
            ["replay", out, "--workload", "bank", "--engine", preset], capsys
        )
        assert code == 0
        result = _submit(
            daemon,
            {
                "kind": "replay",
                "workload": "bank",
                "engine": preset,
                "trace": Path(out).read_bytes(),
            },
        )
        assert result["exit"] == 0
        assert result["stdout"] == cli_stdout

    @pytest.mark.parametrize(
        "engine", ALL_ENGINES, ids=[e.describe() for e in ALL_ENGINES]
    )
    def test_all_engine_combos_warm_equals_oneshot(self, daemon, engine):
        """The 8-combo ablation space, via engine-flag dicts: a warm
        daemon run is identical to a cold one-shot executor run."""
        from repro.serve.jobs import run_job

        flags = {
            "threaded_dispatch": engine.threaded_dispatch,
            "fusion": engine.fusion,
            "inline_caches": engine.inline_caches,
        }
        job = validate_job(record_job(engine=flags))
        oneshot = run_job(job, None, CancelToken(None))
        warm = _submit(daemon, record_job(engine=flags))
        assert warm["exit"] == oneshot["exit"] == 0
        assert warm["stdout"] == oneshot["stdout"]
        assert warm["trace"] == oneshot["trace"]
        replayed = _submit(
            daemon,
            {
                "kind": "replay",
                "workload": "bank",
                "engine": flags,
                "trace": warm["trace"],
            },
        )
        assert replayed["exit"] == 0

    def test_warm_and_cold_daemons_agree(self, daemon, reference):
        cold = ServeDaemon(workers=1, warm=False).start()
        try:
            result = _submit(cold, record_job())
            assert result["stdout"] == reference["stdout"]
            assert result["trace"] == reference["trace"]
        finally:
            cold.stop()

    def test_warm_hits_do_not_change_results(self, daemon, reference):
        again = _submit(daemon, record_job())
        assert again["stdout"] == reference["stdout"]
        assert again["trace"] == reference["trace"]
        assert daemon.pool.stats()["hits"] >= 1

    def test_explore_matches_cli(self, daemon, tmp_path, capsys):
        out = str(tmp_path / "failure.djv")
        code, cli_stdout, _ = run_cli(
            ["explore", "--workload", "bank", "--seed", "3",
             "--bound", "2", "--budget", "30", "-o", out],
            capsys,
        )
        assert code == 0
        result = _submit(
            daemon,
            {
                "kind": "explore",
                "workload": "bank",
                "seed": 3,
                "bound": 2,
                "budget": 30,
                "out_name": out,
            },
        )
        assert result["exit"] == 0
        assert result["stdout"] == cli_stdout
        assert ("trace" in result) == Path(out).exists()
        if "trace" in result:
            assert result["trace"] == Path(out).read_bytes()

    def test_doctor_matches_cli(self, tmp_path, daemon, reference, capsys):
        path = tmp_path / "ref.djv"
        path.write_bytes(reference["trace"])
        code, cli_stdout, _ = run_cli(
            ["doctor", str(path), "--workload", "bank"], capsys
        )
        result = _submit(
            daemon,
            {
                "kind": "doctor",
                "workload": "bank",
                "trace": reference["trace"],
                "trace_name": str(path),
            },
        )
        assert result["exit"] == code
        assert result["stdout"] == cli_stdout

    def test_trace_stats_matches_cli(self, tmp_path, daemon, reference, capsys):
        path = tmp_path / "ref.djv"
        path.write_bytes(reference["trace"])
        code, cli_stdout, _ = run_cli(["trace-stats", str(path)], capsys)
        assert code == 0
        result = _submit(
            daemon, {"kind": "trace-stats", "trace": reference["trace"]}
        )
        assert result["exit"] == 0
        assert result["stdout"] == cli_stdout


def _submit(daemon, job, timeout=60):
    with ServeClient(daemon.address) as client:
        return client.submit(job, timeout=timeout)


# ---------------------------------------------------------------------------
# robustness end-to-end


class TestRobustness:
    def test_hung_workload_lands_in_a_typed_deadline(self, daemon):
        with ServeClient(daemon.address) as client:
            with pytest.raises(JobDeadlineExceeded, match="deadline"):
                client.submit(
                    {
                        "kind": "record",
                        "source": HUNG_SRC,
                        "name": "hung",
                        "seed": 1,
                        "deadline": 0.4,
                    }
                )
            # the daemon survived its hostile guest: still ready, still
            # serving on the very same connection
            assert client.health()["state"] == "ready"
            assert client.submit(record_job())["exit"] == 0

    def test_admission_storm_converges_with_retry(self):
        gate = threading.Event()
        started = threading.Event()

        def blocking(job, pool, token):
            started.set()
            gate.wait(10)
            return {"n": job.get("n")}

        d = ServeDaemon(workers=1, queue_limit=1, executor=blocking).start()
        try:
            holder = ServeClient(d.address)
            result_box = {}
            filler = threading.Thread(
                target=lambda: result_box.update(
                    holder.submit({**record_job(), "n": 0})
                )
            )
            filler.start()
            assert started.wait(10)
            with ServeClient(d.address) as client:
                with pytest.raises(JobRejected) as exc:
                    client.submit({**record_job(), "n": 1})
                assert exc.value.reason == "overloaded"
                assert exc.value.retry_after > 0
                # retrying with the daemon's hint converges once the
                # queue frees; the injected sleep frees it
                slept = []

                def sleep(seconds):
                    slept.append(seconds)
                    gate.set()
                    time.sleep(0.02)

                retried = client.submit_with_retry(
                    {**record_job(), "n": 1},
                    policy=BackoffPolicy(
                        attempts=20, base_delay=0.01,
                        max_delay=0.05, jitter_seed=1,
                    ),
                    sleep=sleep,
                )
                assert retried == {"n": 1}
                # the daemon's retry_after floor was honored
                assert slept[0] >= exc.value.retry_after
            filler.join(timeout=10)
            holder.close()
            assert result_box.get("n") == 0
        finally:
            gate.set()
            d.stop()

    def test_concurrent_clients_match_serial(self, daemon):
        """Satellite: N well-formed clients interleaved with one
        vanisher and one garbage sender — every well-formed job is
        byte-identical to its serial run."""
        seeds = [11, 22, 33, 44]
        serial = {s: _submit(daemon, record_job(seed=s)) for s in seeds}

        results: dict[int, dict] = {}
        errors: list[BaseException] = []

        def well_formed(seed):
            try:
                results[seed] = _submit(daemon, record_job(seed=seed))
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        def vanisher():
            sock = socket.create_connection(daemon.address, timeout=5)
            sock.sendall(
                encode_serve_message({"op": "submit", "job": record_job()})
            )
            time.sleep(0.01)
            sock.close()  # gone mid-job, response undeliverable

        def garbage():
            sock = socket.create_connection(daemon.address, timeout=5)
            # an impossible frame length: the decoder rejects it as a
            # typed FrameError, costing only this connection
            sock.sendall(b"\xff\xff\xff\xff" + b"\xa5" * 32)
            time.sleep(0.05)
            sock.close()

        threads = [
            threading.Thread(target=well_formed, args=(s,)) for s in seeds
        ]
        threads.append(threading.Thread(target=vanisher))
        threads.append(threading.Thread(target=garbage))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        for seed in seeds:
            assert results[seed]["stdout"] == serial[seed]["stdout"]
            assert results[seed]["trace"] == serial[seed]["trace"]
        assert daemon.frame_errors >= 1


class TestGracefulDrain:
    def test_drain_op_loses_zero_accepted_jobs(self):
        release = threading.Event()

        def slow(job, pool, token):
            release.wait(10)
            return {"n": job["n"]}

        d = ServeDaemon(workers=2, queue_limit=8, executor=slow).start()
        try:
            results: dict[int, dict] = {}

            def submit(n):
                results[n] = _submit(d, {**record_job(), "n": n})

            threads = [
                threading.Thread(target=submit, args=(n,)) for n in range(4)
            ]
            for t in threads:
                t.start()
            deadline = time.monotonic() + 10
            while (
                d.supervisor.jobs_accepted < 4 and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert d.supervisor.jobs_accepted == 4
            with ServeClient(d.address) as control:
                control.drain()
            release.set()
            for t in threads:
                t.join(timeout=30)
            # every accepted job completed AND delivered its response
            assert sorted(results) == [0, 1, 2, 3]
            assert [results[n]["n"] for n in range(4)] == [0, 1, 2, 3]
            # and the daemon refuses new connections now
            with pytest.raises(OSError):
                socket.create_connection(d.address, timeout=0.5)
        finally:
            release.set()
            d.stop()

    def test_sigterm_drains_and_exits_zero(self):
        """The acceptance gate: a TERM'd `repro serve` finishes what it
        accepted and exits 0."""
        proc, address = spawn_serve_process(workers=1, queue_limit=4)
        client = None
        try:
            client = ServeClient.connect(
                address,
                policy=BackoffPolicy(
                    attempts=6, base_delay=0.05, max_delay=0.4, jitter_seed=0
                ),
            )
            assert client.health()["state"] == "ready"
            result = client.submit(record_job(), timeout=60)
            assert result["exit"] == 0
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            proc.kill()
            proc.wait(timeout=10)
            if proc.stdout is not None:
                proc.stdout.close()
            if client is not None:
                client.close()
