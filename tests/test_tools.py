"""Replay-based tools: the profiler and the coverage reporter."""

import pytest

from repro.api import GuestProgram, record
from repro.lang import compile_source
from repro.tools import ReplayCoverage, ReplayProfiler
from repro.tools.profiler import profile
from repro.vm import SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import philosophers, racy_bank
from tests.conftest import jitter_knobs

CFG = VMConfig(semispace_words=70_000)


@pytest.fixture(scope="module")
def recorded_bank():
    return record(racy_bank(), config=CFG, timer=SeededJitterTimer(5, 40, 160))


class TestProfiler:
    def test_cycles_fully_attributed(self, recorded_bank):
        report = ReplayProfiler(racy_bank(), recorded_bank.trace, CFG).run()
        assert sum(m.cycles for m in report.methods.values()) == report.total_cycles
        assert sum(report.thread_cycles.values()) == report.total_cycles

    def test_hot_method_is_the_teller_loop(self, recorded_bank):
        report = profile(racy_bank(), recorded_bank.trace, CFG)
        assert report.top_methods(1)[0].qualname == "Teller.run()V"

    def test_invocation_counts(self, recorded_bank):
        report = profile(racy_bank(), recorded_bank.trace, CFG)
        assert report.methods["Teller.run()V"].invocations == 3  # three tellers
        assert report.methods["Main.main()V"].invocations == 1

    def test_profile_is_deterministic(self, recorded_bank):
        """The headline property: no probe effect, identical profiles."""
        a = profile(racy_bank(), recorded_bank.trace, CFG)
        b = profile(racy_bank(), recorded_bank.trace, CFG)
        assert a.methods == b.methods
        assert a.thread_cycles == b.thread_cycles

    def test_profiling_does_not_perturb_replay(self, recorded_bank):
        report = profile(racy_bank(), recorded_bank.trace, CFG)
        assert report.output_text == recorded_bank.result.output_text
        assert report.total_cycles == recorded_bank.result.cycles

    def test_monitor_stats_on_contended_workload(self):
        session = record(philosophers(), config=CFG, **jitter_knobs(3))
        report = profile(philosophers(), session.trace, CFG)
        assert report.monitor_acquisitions > 0

    def test_format_renders(self, recorded_bank):
        text = profile(racy_bank(), recorded_bank.trace, CFG).format(5)
        assert "total cycles" in text and "Teller.run" in text


class TestCoverage:
    MJ = """
class Main {
    static int pick(int x) {
        if (x > 0) { return 1; }
        else { return -1; }
    }
    static int unused() { return 42; }
    static void main() {
        System.printInt(Main.pick(5));
    }
}
"""

    def make(self):
        program = GuestProgram(classdefs=compile_source(self.MJ), name="cov")
        session = record(program, config=CFG, **jitter_knobs(1))
        return program, session

    def test_dead_branch_and_method_reported(self):
        program, session = self.make()
        report = ReplayCoverage(program, session.trace, CFG).run()
        pick = report.methods["Main.pick(I)I"]
        assert 0 < pick.ratio < 1  # the else branch never ran
        unused = report.methods["Main.unused()I"]
        assert unused.hit_count == 0
        main = report.methods["Main.main()V"]
        assert main.ratio == 1.0

    def test_missed_lines_map_to_source(self):
        program, session = self.make()
        report = ReplayCoverage(program, session.trace, CFG).run()
        missed = report.methods["Main.pick(I)I"].missed_lines
        assert 5 in missed  # the else-return source line

    def test_core_library_excluded(self):
        program, session = self.make()
        report = ReplayCoverage(program, session.trace, CFG).run()
        assert all(q.startswith("Main.") for q in report.methods)

    def test_format_renders(self):
        program, session = self.make()
        text = ReplayCoverage(program, session.trace, CFG).run().format()
        assert "overall:" in text


class TestHeapCensus:
    def make_vm(self):
        from repro.api import build_vm

        src = """
class Node { Node next; }
class Main {
    static Node head;
    static int[] keep;
    static void main() {
        Main.keep = new int[100];
        for (int i = 0; i < 25; i++) {
            Node fresh = new Node();
            fresh.next = Main.head;
            Main.head = fresh;
        }
        System.gc();
    }
}
"""
        program = GuestProgram(classdefs=compile_source(src), name="census")
        vm = build_vm(program, CFG)
        vm.run()
        return vm, program

    def test_direct_census_counts_user_objects(self):
        from repro.tools import census

        vm, _ = self.make_vm()
        report = census(vm)
        assert report.by_class["Node"].count == 25
        assert report.by_class["[I"].words >= 103  # the 100-int array
        assert report.total_objects == sum(c.count for c in report.by_class.values())

    def test_remote_census_matches_direct(self):
        from repro.remote import DebugPort, RemoteResolver
        from repro.tools import census, remote_census
        from repro.vm import VirtualMachine

        vm, program = self.make_vm()
        tool = VirtualMachine(CFG)
        tool.declare(program.classdefs)
        port = DebugPort(vm)
        remote = remote_census(port, RemoteResolver(port, tool.loader))
        direct = census(vm)
        assert remote.total_objects == direct.total_objects
        assert remote.total_words == direct.total_words
        assert {k: (c.count, c.words) for k, c in remote.by_class.items()} == {
            k: (c.count, c.words) for k, c in direct.by_class.items()
        }

    def test_format_renders(self):
        from repro.tools import census

        vm, _ = self.make_vm()
        assert "live objects:" in census(vm).format(5)


class TestMonitorReleaseOnDeath:
    def test_dying_thread_releases_locks(self):
        from tests.conftest import run_source
        from repro.vm import FixedTimer

        src = """.class Bad
.super Thread
.method run ()V
    getstatic Main.lock LObject;
    monitorenter
    iconst 1
    iconst 0
    idiv
    pop
    return
.end
.class Main
.field static lock LObject;
.method static main ()V
    new Object
    putstatic Main.lock LObject;
    new Bad
    dup
    invokestatic Thread.start(LThread;)V
    invokestatic Thread.join(LThread;)V
    getstatic Main.lock LObject;
    monitorenter
    ldc "recovered"
    invokestatic System.print(LString;)V
    getstatic Main.lock LObject;
    monitorexit
    return
.end
"""
        result = run_source(src, timer=FixedTimer(5000))
        assert result.output_text == "recovered"
        assert not result.deadlocked
