"""The §5 related-work baselines and their documented properties."""

import pytest

from repro.api import record
from repro.baselines import (
    instant_replay_record,
    instant_replay_replay,
    rc_record,
    rc_replay,
    recap_record,
    recap_replay,
    recap_transform,
    repeated_execution,
)
from repro.core import compare_runs
from repro.vm.machine import VMConfig
from repro.workloads import producer_consumer, racy_bank, synced_bank
from tests.conftest import jitter_knobs

CFG = VMConfig(semispace_words=70_000)


class TestRepeatedExecution:
    def test_racy_program_diverges(self):
        report = repeated_execution(lambda: racy_bank(), runs=8, config=CFG)
        assert report.distinct_outputs > 1
        assert report.divergence_rate > 0.5

    def test_synced_program_output_stable_but_behavior_varies(self):
        report = repeated_execution(lambda: synced_bank(), runs=6, config=CFG)
        assert report.distinct_outputs == 1  # result is race-free
        assert report.distinct_behaviors > 1  # the executions are not


class TestRussinovichCogswell:
    def test_replay_faithful(self):
        res, trace, stats = rc_record(racy_bank(), config=CFG, **jitter_knobs(4))
        res2, map_ops = rc_replay(racy_bank(), trace, config=CFG)
        assert compare_runs(res, res2).faithful
        assert map_ops > 0  # the cost DejaVu avoids

    def test_logs_every_dispatch_not_just_preemptions(self):
        res, trace, stats = rc_record(
            producer_consumer(), config=CFG, **jitter_knobs(4)
        )
        dejavu = record(producer_consumer(), config=CFG, **jitter_knobs(4))
        assert stats["dispatch_records"] >= res.switches
        assert stats["dispatch_records"] > dejavu.stats["switch_records"]

    def test_trace_strictly_larger_than_dejavu(self):
        _, trace, _ = rc_record(producer_consumer(), config=CFG, **jitter_knobs(4))
        dejavu = record(producer_consumer(), config=CFG, **jitter_knobs(4))
        assert trace.encoded_size_bytes > dejavu.trace.encoded_size_bytes


class TestInstantReplay:
    def test_crew_disciplined_program_replays_results(self):
        res, crew = instant_replay_record(synced_bank(), config=CFG, **jitter_knobs(9))
        res2 = instant_replay_replay(
            synced_bank(), crew, config=CFG, **jitter_knobs(77)
        )
        assert crew.n_records > 0
        assert res.output_text == res2.output_text

    def test_non_crew_race_not_reproduced(self):
        """The paper: 'this approach will not work for applications that
        do not use the CREW discipline'.  The racy bank's updates happen
        outside any monitor — the CREW log is empty and replay is at the
        mercy of the new timer."""
        res, crew = instant_replay_record(
            racy_bank(), config=CFG, **jitter_knobs(9, 20, 90)
        )
        assert crew.n_records == 0  # nothing coarse-grained to log
        outputs = set()
        for seed in range(6):
            res2 = instant_replay_replay(
                racy_bank(), crew, config=CFG, **jitter_knobs(100 + seed, 20, 90)
            )
            outputs.add(res2.output_text)
        assert len(outputs | {res.output_text}) > 1

    def test_crew_trace_counts_versions(self):
        res, crew = instant_replay_record(synced_bank(), config=CFG, **jitter_knobs(2))
        assert crew.n_objects >= 1
        assert crew.encoded_size_bytes > 0


class TestRecap:
    def test_transform_inserts_read_logging(self):
        prog = racy_bank()
        transformed = recap_transform(prog)
        assert any(cd.name == "Recap" for cd in transformed.classdefs)
        from repro.vm.bytecode import Op

        original_calls = sum(
            sum(1 for i in m.code if i.op is Op.INVOKESTATIC and i.arg == "Recap.read(I)I")
            for cd in prog.classdefs
            for m in cd.methods
        )
        inserted = sum(
            sum(1 for i in m.code if i.op is Op.INVOKESTATIC and i.arg == "Recap.read(I)I")
            for cd in transformed.classdefs
            for m in cd.methods
        )
        assert original_calls == 0 and inserted > 0

    def test_transform_preserves_semantics(self):
        from repro.api import build_vm

        plain = build_vm(racy_bank(), CFG, timer=None).run()
        transformed = build_vm(recap_transform(racy_bank()), CFG, timer=None).run()
        assert plain.output_text == transformed.output_text

    def test_transform_does_not_mutate_original(self):
        prog = racy_bank()
        before = [len(m.code) for cd in prog.classdefs for m in cd.methods]
        recap_transform(prog)
        after = [len(m.code) for cd in prog.classdefs for m in cd.methods]
        assert before == after

    def test_replay_faithful_with_huge_trace(self):
        session = recap_record(racy_bank(), config=CFG, **jitter_knobs(4))
        res2 = recap_replay(session, config=CFG)
        assert compare_runs(session.result, res2).faithful
        assert session.read_records > 50

    def test_trace_much_larger_than_dejavu(self):
        session = recap_record(racy_bank(), config=CFG, **jitter_knobs(4))
        dejavu = record(racy_bank(), config=CFG, **jitter_knobs(4))
        assert session.trace.encoded_size_bytes > 3 * dejavu.trace.encoded_size_bytes

    def test_double_transform_rejected(self):
        from repro.vm.errors import VMError

        with pytest.raises(VMError):
            recap_transform(recap_transform(racy_bank()))


class TestComparativeOrdering:
    def test_trace_size_ordering_dejavu_smallest(self):
        """The §5 story in one assertion chain, per workload."""
        knobs = jitter_knobs(13)
        dejavu = record(producer_consumer(), config=CFG, **knobs).trace.encoded_size_bytes
        _, rc_trace, _ = rc_record(producer_consumer(), config=CFG, **jitter_knobs(13))
        recap = recap_record(producer_consumer(), config=CFG, **jitter_knobs(13))
        assert dejavu < rc_trace.encoded_size_bytes
        assert dejavu < recap.trace.encoded_size_bytes
