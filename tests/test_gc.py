"""The type-accurate copying collector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm import VirtualMachine, assemble
from repro.vm.layout import HEADER_WORDS
from repro.vm.machine import VMConfig
from tests.conftest import SMALL_HEAP, run_source

LINKED_LIST = """.class Node
.field next LNode;
.field value I
.class Main
.method static main ()V
    ; build a 50-node list, thrash the heap, verify the list
    aconst_null
    astore 0
    iconst 0
    istore 1
build:
    iload 1
    iconst 50
    if_icmpge thrash
    new Node
    astore 2
    aload 2
    iload 1
    putfield Node.value I
    aload 2
    aload 0
    putfield Node.next LNode;
    aload 2
    astore 0
    iinc 1 1
    goto build
thrash:
    iconst 0
    istore 1
churn:
    iload 1
    iconst 400
    if_icmpge check
    iconst 40
    newarray
    pop
    iinc 1 1
    goto churn
check:
    iconst 0
    istore 2
sum:
    aload 0
    ifnull report
    iload 2
    aload 0
    getfield Node.value I
    iadd
    istore 2
    aload 0
    getfield Node.next LNode;
    astore 0
    goto sum
report:
    iload 2
    invokestatic System.printInt(I)V
    return
.end
"""


class TestLiveness:
    def test_linked_list_survives_collections(self):
        result = run_source(LINKED_LIST, config=VMConfig(semispace_words=7000))
        assert result.output_text == str(sum(range(50)))
        assert result.gc_count >= 2

    def test_same_program_bigger_heap_same_output(self):
        small = run_source(LINKED_LIST, config=VMConfig(semispace_words=7000))
        big = run_source(LINKED_LIST, config=VMConfig(semispace_words=100_000))
        assert small.output_text == big.output_text
        assert big.gc_count == 0

    def test_explicit_gc_native(self):
        src = """.class Main
.method static main ()V
    invokestatic System.gc()V
    invokestatic System.gc()V
    ldc "ok"
    invokestatic System.print(LString;)V
    return
.end
"""
        result = run_source(src)
        assert result.output_text == "ok"
        assert result.gc_count == 2


class TestRootCoverage:
    def test_statics_are_roots(self):
        src = """.class Main
.field static keep [I
.method static main ()V
    iconst 3
    newarray
    putstatic Main.keep [I
    getstatic Main.keep [I
    iconst 0
    iconst 42
    iastore
    invokestatic System.gc()V
    getstatic Main.keep [I
    iconst 0
    iaload
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "42"

    def test_operand_stack_is_root(self):
        src = """.class Main
.method static main ()V
    iconst 1
    newarray
    dup
    iconst 0
    iconst 7
    iastore
    invokestatic System.gc()V
    iconst 0
    iaload
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "7"

    def test_locals_across_frames_are_roots(self):
        src = """.class Main
.method static helper ([I)I
    invokestatic System.gc()V
    aload 0
    iconst 0
    iaload
    ireturn
.end
.method static main ()V
    iconst 1
    newarray
    astore 0
    aload 0
    iconst 0
    iconst 9
    iastore
    aload 0
    invokestatic Main.helper([I)I
    invokestatic System.printInt(I)V
    aload 0
    iconst 0
    iaload
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "99"

    def test_interned_strings_survive(self):
        src = """.class Main
.method static main ()V
    invokestatic System.gc()V
    ldc "still here"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "still here"

    def test_monitor_table_rekeyed(self):
        """A lock held across a GC must still be owned afterwards."""
        src = """.class Main
.field static o LObject;
.method static main ()V
    new Object
    putstatic Main.o LObject;
    getstatic Main.o LObject;
    monitorenter
    invokestatic System.gc()V
    getstatic Main.o LObject;
    monitorexit
    ldc "ok"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "ok"

    def test_waitset_survives_gc(self):
        src = """.class W
.super Thread
.method run ()V
    getstatic Main.o LObject;
    monitorenter
    iconst 1
    putstatic Main.ready I
    getstatic Main.o LObject;
    invokestatic System.wait(LObject;)V
    getstatic Main.o LObject;
    monitorexit
    ldc "woken"
    invokestatic System.print(LString;)V
    return
.end
.class Main
.field static o LObject;
.field static ready I
.method static main ()V
    new Object
    putstatic Main.o LObject;
    new W
    astore 0
    aload 0
    invokestatic Thread.start(LThread;)V
spin:
    getstatic Main.ready I
    ifne go
    invokestatic Thread.yield()V
    goto spin
go:
    invokestatic System.gc()V
    getstatic Main.o LObject;
    monitorenter
    getstatic Main.o LObject;
    invokestatic System.notify(LObject;)V
    getstatic Main.o LObject;
    monitorexit
    aload 0
    invokestatic Thread.join(LThread;)V
    return
.end
"""
        assert run_source(src).output_text == "woken"


class TestMechanics:
    def test_addresses_actually_move(self):
        vm = VirtualMachine(SMALL_HEAP)
        addr = vm.om.new_array("[I", 10)
        idx = vm.loader._tr_push(addr)
        vm.collect()
        assert vm.loader._tr_get(idx) != addr

    def test_dead_objects_reclaimed(self):
        vm = VirtualMachine(SMALL_HEAP)
        before = vm.memory.used_words
        for _ in range(100):
            vm.om.new_array("[I", 10)  # all garbage
        vm.collect()
        # within a small slop of the pre-garbage live size
        assert vm.memory.used_words <= before + 64

    def test_sharing_preserved(self):
        """Two references to one object stay one object after copying."""
        vm = VirtualMachine(SMALL_HEAP)
        arr = vm.om.new_array("[LObject;", 2)
        ai = vm.loader._tr_push(arr)
        obj = vm.om.new_object(vm.loader.classes["Object"].layout)
        vm.om.array_put(vm.loader._tr_get(ai), 0, obj)
        vm.om.array_put(vm.loader._tr_get(ai), 1, obj)
        vm.collect()
        arr = vm.loader._tr_get(ai)
        assert vm.om.array_get(arr, 0) == vm.om.array_get(arr, 1)

    def test_cyclic_structures_survive(self):
        src = """.class Node
.field next LNode;
.class Main
.method static main ()V
    new Node
    astore 0
    new Node
    astore 1
    aload 0
    aload 1
    putfield Node.next LNode;
    aload 1
    aload 0
    putfield Node.next LNode;
    invokestatic System.gc()V
    aload 0
    getfield Node.next LNode;
    getfield Node.next LNode;
    aload 0
    if_acmpeq yes
    iconst 0
    goto out
yes:
    iconst 1
out:
    invokestatic System.printInt(I)V
    return
.end
"""
        assert run_source(src).output_text == "1"

    def test_gc_count_in_boot_record(self):
        from repro.vm.memory import BOOT_GC_COUNT

        vm = VirtualMachine(SMALL_HEAP)
        vm.collect()
        vm.collect()
        assert vm.memory.boot_read(BOOT_GC_COUNT) == 2

    def test_collection_is_deterministic(self):
        def run():
            vm = VirtualMachine(SMALL_HEAP)
            vm.declare(assemble(LINKED_LIST))
            result = vm.run()
            return result.heap_digest, result.gc_count

        assert run() == run()


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)),
            min_size=1,
            max_size=40,
        )
    )
    def test_random_object_graphs_survive(self, edges):
        """Build a random directed graph of nodes in the guest heap, collect,
        and verify every edge — exercises forwarding, sharing, cycles."""
        vm = VirtualMachine(VMConfig(semispace_words=20_000))
        vm.declare(assemble(".class N\n.field next LN;\n.field v I\n"))
        vm.load("N")
        layout = vm.loader.classes["N"].layout
        off_next = layout.field_by_name["next"].offset
        off_v = layout.field_by_name["v"].offset

        nodes = []
        for i in range(10):
            addr = vm.om.new_object(layout)
            nodes.append(vm.loader._tr_push(addr))
            vm.om.put_field(vm.loader._tr_get(nodes[-1]), off_v, i)
        for src_i, dst_i in edges:
            vm.om.put_field(
                vm.loader._tr_get(nodes[src_i]),
                off_next,
                vm.loader._tr_get(nodes[dst_i]),
            )
        vm.collect()
        vm.collect()  # twice: forwarding state must fully reset
        addr_of = [vm.loader._tr_get(h) for h in nodes]
        # values intact
        for i, addr in enumerate(addr_of):
            assert vm.om.get_field(addr, off_v) == i
        # edges intact (last write per source wins)
        final_edge: dict[int, int] = {}
        for src_i, dst_i in edges:
            final_edge[src_i] = dst_i
        for src_i, dst_i in final_edge.items():
            assert vm.om.get_field(addr_of[src_i], off_next) == addr_of[dst_i]
