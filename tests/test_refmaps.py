"""The verifier / reference-map builder (GC type accuracy)."""

import pytest

from repro.vm import VirtualMachine, assemble
from repro.vm.errors import VerifyError
from repro.vm.refmaps import analyze_method, merge_types
from tests.conftest import TEST_CONFIG


def analyze(src: str, method: str = "m()V", cls: str = "T"):
    """Declare + layout in a real VM (real resolver), analyze one method."""
    vm = VirtualMachine(TEST_CONFIG)
    vm.declare(assemble(src))
    rc = vm.loader.ensure_layout(cls)
    return analyze_method(cls, rc.cdef.method_def(method), vm.loader)


def wrap(body: str, sig: str = "()V", extra: str = "") -> str:
    return f""".class T
.field x I
.field o LObject;
.field static s I
.field static r LObject;
.method static m {sig}
{body}
.end
{extra}
"""


class TestAcceptance:
    def test_straightline(self):
        maps = analyze(wrap("    iconst 1\n    iconst 2\n    iadd\n    pop\n    return"))
        assert maps.max_stack == 2
        assert maps.reachable(0)

    def test_loop_with_merge(self):
        maps = analyze(
            wrap(
                """
    iconst 0
    istore 0
top:
    iload 0
    iconst 10
    if_icmpge out
    iinc 0 1
    goto top
out:
    return
"""
            )
        )
        assert all(maps.reachable(i) for i in range(8))

    def test_null_merges_with_reference(self):
        maps = analyze(
            wrap(
                """
    iconst 1
    ifeq a
    aconst_null
    goto b
a:
    getstatic T.r LObject;
b:
    pop
    return
"""
            )
        )
        # at the merge point the slot is a reference either way
        bci_pop = 5
        assert maps.stack_types[bci_pop] == ("LObject;",)

    def test_ref_map_positions(self):
        maps = analyze(
            wrap(
                """
    getstatic T.r LObject;
    astore 0
    iconst 5
    istore 1
    aload 0
    iload 1
    pop
    pop
    return
""",
            )
        )
        lrefs, srefs = maps.ref_map(6)  # at the first pop: stack = [ref, int]
        assert 0 in lrefs and 1 not in lrefs
        assert srefs == (0,)

    def test_unreachable_code_tolerated(self):
        maps = analyze(wrap("    return\n    iconst 1\n    pop\n    return"))
        assert not maps.reachable(1)
        assert maps.ref_map(1) == ((), ())

    def test_dead_local_slot_is_top_not_ref(self):
        maps = analyze(
            wrap(
                """
    getstatic T.r LObject;
    astore 0
    iconst 1
    istore 0
    iconst 0
    pop
    return
"""
            )
        )
        lrefs, _ = maps.ref_map(5)  # after istore 0 overwrote the ref
        assert 0 not in lrefs

    def test_instance_method_this_is_ref(self):
        src = """.class T
.method m ()V
    return
.end
"""
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(assemble(src))
        rc = vm.loader.ensure_layout("T")
        maps = analyze_method("T", rc.cdef.method_def("m()V"), vm.loader)
        lrefs, _ = maps.ref_map(0)
        assert lrefs == (0,)

    def test_native_methods_have_empty_maps(self):
        src = ".class T\n.native static n ()I\n"
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(assemble(src))
        rc = vm.loader.ensure_layout("T")
        maps = analyze_method("T", rc.cdef.method_def("n()I"), vm.loader)
        assert maps.local_types == []


class TestRejection:
    def rejects(self, body: str, sig: str = "()V", fragment: str = ""):
        with pytest.raises(VerifyError) as exc:
            analyze(wrap(body, sig))
        if fragment:
            assert fragment in str(exc.value)

    def test_stack_underflow(self):
        self.rejects("    pop\n    return", fragment="underflow")

    def test_int_where_ref_expected(self):
        self.rejects("    iconst 1\n    astore 0\n    return")

    def test_ref_where_int_expected(self):
        self.rejects("    aconst_null\n    iconst 1\n    iadd\n    pop\n    return")

    def test_iload_of_ref_slot(self):
        self.rejects(
            "    getstatic T.r LObject;\n    astore 0\n    iload 0\n    pop\n    return"
        )

    def test_stack_depth_mismatch_at_merge(self):
        self.rejects(
            """
    iconst 1
    ifeq a
    iconst 5
a:
    return
"""
        )

    def test_wrong_return_kind(self):
        self.rejects("    iconst 1\n    ireturn")  # in a V method

    def test_missing_value_for_ireturn(self):
        with pytest.raises(VerifyError):
            analyze(wrap("    return", sig="()I"), method="m")
        # (return in non-void method)

    def test_putfield_wrong_value_type(self):
        self.rejects(
            "    getstatic T.r LObject;\n    aconst_null\n    putfield T.x I\n    return"
        )

    def test_getfield_on_int(self):
        self.rejects("    iconst 1\n    getfield T.x I\n    pop\n    return")

    def test_static_vs_instance_confusion(self):
        self.rejects("    getstatic T.x\n    pop\n    return")
        self.rejects(
            "    getstatic T.r LObject;\n    getfield T.s\n    pop\n    return"
        )

    def test_declared_descriptor_mismatch(self):
        self.rejects("    getstatic T.s [I\n    pop\n    return", fragment="declared")

    def test_arith_on_refs(self):
        self.rejects("    aconst_null\n    aconst_null\n    iadd\n    pop\n    return")

    def test_monitor_on_int(self):
        self.rejects("    iconst 1\n    monitorenter\n    return")

    def test_call_with_wrong_arg_type(self):
        self.rejects(
            "    aconst_null\n    invokestatic System.printInt(I)V\n    return"
        )

    def test_unknown_class_in_new(self):
        self.rejects("    new Nothing\n    pop\n    return")

    def test_aaload_on_int_array(self):
        self.rejects(
            "    iconst 1\n    newarray\n    iconst 0\n    aaload\n    pop\n    return"
        )

    def test_iaload_on_ref_array(self):
        self.rejects(
            "    iconst 1\n    anewarray LObject;\n    iconst 0\n    iaload\n    pop\n    return"
        )


class TestMergeTypes:
    def make_resolver(self):
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(
            assemble(
                """
.class A
.class B
.super A
.class C
.super A
"""
            )
        )
        return vm.loader

    def test_common_super(self):
        r = self.make_resolver()
        assert merge_types("LB;", "LC;", r) == "LA;"
        assert merge_types("LB;", "LA;", r) == "LA;"
        assert merge_types("LB;", "LString;", r) == "LObject;"

    def test_null_with_ref(self):
        r = self.make_resolver()
        assert merge_types("N", "LB;", r) == "LB;"

    def test_arrays(self):
        r = self.make_resolver()
        assert merge_types("[I", "[I", r) == "[I"
        assert merge_types("[LB;", "[LC;", r) == "[LA;"
        assert merge_types("[I", "[LB;", r) == "LObject;"
        assert merge_types("[I", "LB;", r) == "LObject;"

    def test_int_with_ref_is_top(self):
        r = self.make_resolver()
        assert merge_types("I", "LB;", r) == "T"
