"""Cross-cutting structural invariants over every loaded workload.

These scan *all* compiled code and metadata of every workload — the
invariants the replay correctness argument rests on, checked exhaustively
rather than per-feature.
"""

import pytest

from repro.api import build_vm
from repro.vm.compiler import (
    M_GOTO,
    M_IF_ACMPEQ,
    M_IFNULL,
    M_INVOKESTATIC,
    M_YIELDPOINT,
    YP_BACKEDGE,
    YP_PROLOGUE,
)
from repro.vm.machine import VMConfig
from repro.workloads import ALL_WORKLOADS

CFG = VMConfig(semispace_words=80_000)

_BRANCH_RANGE = range(24, 41)  # M_GOTO .. M_IFNONNULL (see compiler.py)


def all_loaded_methods():
    for name, factory in sorted(ALL_WORKLOADS.items()):
        program = factory()
        vm = build_vm(program, CFG)
        for cd in program.classdefs:
            vm.load(cd.name)
        for rm in vm.loader.method_by_id:
            if not rm.native:
                yield name, vm, rm


class TestCompiledCodeInvariants:
    def test_every_backward_branch_has_a_yieldpoint(self):
        """The quasi-preemption guarantee: no loop can run unbounded
        between yield points."""
        checked = 0
        for name, vm, rm in all_loaded_methods():
            ops = rm.code.ops
            for pc, (mop, a, b) in enumerate(ops):
                if mop in _BRANCH_RANGE and isinstance(a, int) and a <= pc:
                    assert ops[pc - 1][0] == M_YIELDPOINT, (name, rm.qualname, pc)
                    assert ops[pc - 1][1] == YP_BACKEDGE
                    checked += 1
        assert checked > 30  # the suite contains plenty of loops

    def test_every_method_starts_with_prologue_yieldpoint(self):
        for name, vm, rm in all_loaded_methods():
            assert rm.code.ops[0][0] == M_YIELDPOINT
            assert rm.code.ops[0][1] == YP_PROLOGUE

    def test_branch_targets_in_range(self):
        for name, vm, rm in all_loaded_methods():
            n = len(rm.code.ops)
            for pc, (mop, a, b) in enumerate(rm.code.ops):
                if mop in _BRANCH_RANGE:
                    assert 0 <= a < n, (rm.qualname, pc, a)

    def test_bci_maps_are_total_and_monotone(self):
        for name, vm, rm in all_loaded_methods():
            code = rm.code
            assert len(code.bci_of) == len(code.ops)
            assert all(
                code.bci_of[i] <= code.bci_of[i + 1]
                for i in range(len(code.bci_of) - 1)
            )
            # pc_of_bci inverts bci_of at the first machine op of each bci
            for bci, pc in enumerate(code.pc_of_bci):
                assert code.bci_of[pc] == bci

    def test_refmaps_exist_at_every_reachable_bci(self):
        for name, vm, rm in all_loaded_methods():
            maps = rm.maps
            for bci in range(len(rm.mdef.code)):
                if maps.reachable(bci):
                    lrefs, srefs = maps.ref_map(bci)
                    assert all(0 <= i < rm.mdef.max_locals for i in lrefs)


class TestMetadataInvariants:
    def test_method_ids_match_dictionary_positions(self):
        for name, factory in sorted(ALL_WORKLOADS.items()):
            program = factory()
            vm = build_vm(program, CFG)
            for cd in program.classdefs:
                vm.load(cd.name)
            loader = vm.loader
            rc, slayout = loader._dict_statics()
            marr = vm.om.get_field(
                rc.statics_addr, slayout.field_by_name["methods"].offset
            )
            vmm_layout = loader.classes["VM_Method"].layout
            mid_off = vmm_layout.field_by_name["methodId"].offset
            for rm in loader.method_by_id:
                vmm = vm.om.array_get(marr, rm.method_id)
                assert vm.om.get_field(vmm, mid_off) == rm.method_id
            break  # one workload suffices; the property is loader-global

    def test_two_vms_same_program_identical_class_tables(self):
        """The remote-reflection precondition: identical load order gives
        identical class ids and layouts in app and tool VMs."""
        for name, factory in sorted(ALL_WORKLOADS.items()):
            program = factory()
            a = build_vm(program, CFG)
            b = build_vm(program, CFG)
            for cd in program.classdefs:
                a.load(cd.name)
                b.load(cd.name)
            assert [l.name for l in a.loader.class_table] == [
                l.name for l in b.loader.class_table
            ]
            for la, lb in zip(a.loader.class_table, b.loader.class_table):
                assert [(f.name, f.desc, f.offset) for f in la.instance_fields] == [
                    (f.name, f.desc, f.offset) for f in lb.instance_fields
                ]
