"""32-bit word semantics: the guest's int arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vm import words

i32 = st.integers(min_value=words.I32_MIN, max_value=words.I32_MAX)
anyint = st.integers(min_value=-(1 << 70), max_value=1 << 70)


class TestToI32:
    def test_identity_in_range(self):
        assert words.to_i32(42) == 42
        assert words.to_i32(-42) == -42

    def test_boundaries(self):
        assert words.to_i32(words.I32_MAX) == words.I32_MAX
        assert words.to_i32(words.I32_MIN) == words.I32_MIN

    def test_wraparound_positive(self):
        assert words.to_i32(words.I32_MAX + 1) == words.I32_MIN

    def test_wraparound_negative(self):
        assert words.to_i32(words.I32_MIN - 1) == words.I32_MAX

    @given(anyint)
    def test_always_in_range(self, n):
        assert words.I32_MIN <= words.to_i32(n) <= words.I32_MAX

    @given(i32)
    def test_fixpoint_on_i32(self, n):
        assert words.to_i32(n) == n

    @given(anyint)
    def test_congruent_mod_2_32(self, n):
        assert (words.to_i32(n) - n) % (1 << 32) == 0


class TestArithmetic:
    @given(i32, i32)
    def test_add_matches_java(self, a, b):
        assert words.iadd(a, b) == words.to_i32(a + b)

    @given(i32, i32)
    def test_sub_matches_java(self, a, b):
        assert words.isub(a, b) == words.to_i32(a - b)

    @given(i32, i32)
    def test_mul_matches_java(self, a, b):
        assert words.imul(a, b) == words.to_i32(a * b)

    def test_add_overflow(self):
        assert words.iadd(words.I32_MAX, 1) == words.I32_MIN

    def test_div_truncates_toward_zero(self):
        assert words.idiv(7, 2) == 3
        assert words.idiv(-7, 2) == -3
        assert words.idiv(7, -2) == -3
        assert words.idiv(-7, -2) == 3

    def test_div_min_by_minus_one_wraps(self):
        # JVM: Integer.MIN_VALUE / -1 == Integer.MIN_VALUE
        assert words.idiv(words.I32_MIN, -1) == words.I32_MIN

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            words.idiv(1, 0)

    def test_rem_sign_follows_dividend(self):
        assert words.irem(7, 3) == 1
        assert words.irem(-7, 3) == -1
        assert words.irem(7, -3) == 1
        assert words.irem(-7, -3) == -1

    def test_rem_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            words.irem(1, 0)

    @given(i32, i32.filter(lambda b: b != 0))
    def test_div_rem_identity(self, a, b):
        q, r = words.idiv(a, b), words.irem(a, b)
        assert words.to_i32(words.imul(q, b) + r) == words.to_i32(a)

    def test_neg(self):
        assert words.ineg(5) == -5
        assert words.ineg(words.I32_MIN) == words.I32_MIN  # JVM overflow case

    @given(i32)
    def test_double_neg(self, a):
        assert words.ineg(words.ineg(a)) == a


class TestShifts:
    def test_shl_basic(self):
        assert words.ishl(1, 4) == 16

    def test_shift_count_masked_to_5_bits(self):
        # JVM masks the shift count with 0x1f
        assert words.ishl(1, 32) == 1
        assert words.ishl(1, 33) == 2
        assert words.ishr(16, 36) == 1

    def test_shr_arithmetic(self):
        assert words.ishr(-8, 1) == -4

    def test_ushr_logical(self):
        assert words.iushr(-1, 28) == 0xF

    @given(i32, st.integers(min_value=0, max_value=31))
    def test_ushr_nonnegative(self, a, s):
        if s > 0:
            assert words.iushr(a, s) >= 0

    @given(i32, st.integers(min_value=0, max_value=31))
    def test_shl_matches_mask(self, a, s):
        assert words.ishl(a, s) == words.to_i32(a << s)


class TestBitwise:
    @given(i32, i32)
    def test_and_or_xor_consistency(self, a, b):
        assert words.ixor(a, b) == words.to_i32(
            words.iand(a, ~b) | words.iand(~a & 0xFFFFFFFF, b)
        ) or True  # xor identity below is the strict check
        assert words.ixor(a, b) == words.to_i32(a ^ b)
        assert words.iand(a, b) == words.to_i32(a & b)
        assert words.ior(a, b) == words.to_i32(a | b)

    @given(i32)
    def test_xor_self_is_zero(self, a):
        assert words.ixor(a, a) == 0

    def test_to_u32(self):
        assert words.to_u32(-1) == 0xFFFFFFFF
        assert words.to_u32(0) == 0
