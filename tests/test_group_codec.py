"""The v3.1 group codec and codec-flagged segments.

Covers the four contracts the codec layer adds on top of the v3 framing:

* **round-trip** — every sub-mode (raw varint, delta-RLE, frame-of-
  reference packing, canonical Huffman) decodes back to the exact word
  sequence, including the arbitrary-precision zigzag class below
  ``-(2**63)`` that fixed-width codecs mishandle;
* **determinism** — pick-best encoding is a pure function of the words,
  so recordings stay byte-identical across engine combinations;
* **compatibility** — all four codec-flag combinations (group and zlib
  bits) seal files that load and replay identically, and undamaged v3/v2
  traces still load;
* **diagnosability** — an unknown codec byte or malformed group payload
  is a typed :class:`TraceFormatError`, the doctor classifies it as
  ``codec-mismatch`` (exit 2), and a torn compressed recording still
  salvages to a replayable prefix.
"""

import random

import pytest

from repro.api import record, replay, replay_prefix
from repro.core.doctor import CLASS_CODEC, diagnose
from repro.core.tracelog import (
    CODEC_GROUP,
    CODEC_GROUP_ZLIB,
    CODEC_RAW,
    CODEC_ZLIB,
    GROUP_HUFF,
    GROUP_PACK,
    GROUP_RAW,
    GROUP_RLE,
    MAGIC,
    TraceLog,
    TraceWriter,
    _encode_group_huff,
    _encode_group_pack,
    _encode_group_rle,
    decode_group,
    encode_group,
    encode_words,
    trace_stats,
)
from repro.faults.inject import segment_boundaries
from repro.vm import SeededJitterTimer
from repro.vm.errors import TraceFormatError
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank

CFG = VMConfig(semispace_words=60_000)
_HEADER = len(MAGIC) + 2


def _program():
    return racy_bank(tellers=2, deposits=8)


def _record_to(path, compress=False):
    return record(
        _program(),
        config=CFG,
        timer=SeededJitterTimer(5, 40, 160),
        out=path,
        compress=compress,
    )


# ---------------------------------------------------------------------------
# the group codec in isolation


class TestGroupCodecRoundTrip:
    CASES = [
        [],
        [0],
        [-1],
        [5] * 100,  # one symbol — Huffman's zero-bit special case
        list(range(1000)),  # perfectly linear — one RLE pair
        [3, 7] * 50,  # alternating — small Huffman alphabet
        [1, 2, 4, 8, 1, 2, 4, 8, 300],
        [-(1 << 70), 1 << 70, 0, -1, 1],  # beyond any fixed width
        [-(1 << 63) - 1, -(1 << 63), -(1 << 63) + 1],  # the zigzag class
    ]

    @pytest.mark.parametrize("words", CASES, ids=range(len(CASES)))
    def test_pick_best_roundtrips(self, words):
        blob = encode_group(words)
        assert decode_group(blob) == words

    @pytest.mark.parametrize("words", CASES, ids=range(len(CASES)))
    def test_every_mode_roundtrips(self, words):
        candidates = [
            bytes([GROUP_RAW]) + encode_words(words),
            _encode_group_rle(words),
            _encode_group_pack(words),
            _encode_group_huff(words),
        ]
        for blob in candidates:
            if blob is None:  # Huffman declined (empty / over-length codes)
                continue
            assert decode_group(blob) == words

    def test_encoding_is_deterministic(self):
        words = [17, -4, 17, 17, 0, 1 << 40]
        assert encode_group(words) == encode_group(list(words))

    def test_constant_deltas_collapse(self):
        # a steady preemption phase: constant switch deltas collapse to a
        # handful of bytes under any of the structured modes
        words = [40] * 500
        blob = encode_group(words)
        assert blob[0] != GROUP_RAW
        assert len(blob) < len(encode_words(words)) // 10

    def test_noisy_ramp_prefers_rle(self):
        # linear with jitter: delta-of-delta RLE territory
        words = [i * 37 for i in range(400)]
        blob = encode_group(words)
        assert blob[0] == GROUP_RLE
        assert decode_group(blob) == words

    def test_never_inflates_beyond_the_tag_byte(self):
        rng = random.Random(99)
        words = [rng.randrange(-(1 << 62), 1 << 62) for _ in range(64)]
        assert len(encode_group(words)) <= 1 + len(encode_words(words))

    def test_run_boundaries(self):
        # runs that end exactly at the sequence tail, and length-2 runs
        for words in ([1, 2, 3, 10], [1, 2], [7, 7, 7], [0, 5, 10, 10]):
            blob = _encode_group_rle(words)
            assert decode_group(blob) == words


@pytest.mark.fuzz
class TestGroupCodecFuzz:
    def test_random_sequences_roundtrip_every_mode(self):
        rng = random.Random(4242)
        for _ in range(200):
            shape = rng.randrange(4)
            n = rng.randrange(0, 300)
            if shape == 0:  # uniform random, huge magnitudes
                words = [rng.randrange(-(1 << 80), 1 << 80) for _ in range(n)]
            elif shape == 1:  # small alphabet (Huffman territory)
                alpha = [rng.randrange(-50, 50) for _ in range(4)]
                words = [rng.choice(alpha) for _ in range(n)]
            elif shape == 2:  # noisy ramp (RLE/PACK territory)
                base = rng.randrange(-1000, 1000)
                words = [base + i * 3 + rng.randrange(2) for i in range(n)]
            else:  # tight range (PACK territory)
                words = [rng.randrange(100, 130) for _ in range(n)]
            blob = encode_group(words)
            assert decode_group(blob) == words


class TestGroupCodecMalformed:
    def test_unknown_mode_byte(self):
        with pytest.raises(TraceFormatError, match="unknown group-codec mode"):
            decode_group(bytes([47, 1, 2, 3]))

    def test_empty_payload(self):
        with pytest.raises(TraceFormatError):
            decode_group(b"")

    def test_truncated_rle(self):
        blob = _encode_group_rle(list(range(100)))
        with pytest.raises(TraceFormatError):
            decode_group(blob[:-1])

    def test_truncated_pack(self):
        blob = _encode_group_pack(list(range(100)))
        with pytest.raises(TraceFormatError):
            decode_group(blob[:-1])

    def test_truncated_huffman(self):
        blob = _encode_group_huff([1, 2, 3] * 20)
        assert blob is not None
        with pytest.raises(TraceFormatError):
            decode_group(blob[:-1])

    def test_implausible_group_length(self):
        # mode RLE claiming 2**40 words must be rejected, not allocated
        payload = bytearray([GROUP_RLE])
        from repro.core.tracelog import _write_uvarint

        _write_uvarint(payload, 1 << 40)
        with pytest.raises(TraceFormatError, match="implausible group length"):
            decode_group(bytes(payload))


# ---------------------------------------------------------------------------
# codec flags on sealed files


class TestCodecFlagCombos:
    @pytest.mark.parametrize(
        "codec,compress",
        [
            (CODEC_RAW, False),
            (CODEC_RAW, True),
            (CODEC_GROUP, False),
            (CODEC_GROUP, True),
        ],
        ids=["raw", "raw+zlib", "group", "group+zlib"],
    )
    def test_all_codec_combos_roundtrip(self, tmp_path, codec, compress):
        session = record(
            _program(), config=CFG, timer=SeededJitterTimer(5, 40, 160)
        )
        path = tmp_path / "t.djv"
        writer = TraceWriter(path, codec=codec, compress=compress)
        writer.switch_sink.extend(session.trace.switches)
        writer.value_sink.extend(session.trace.values)
        writer.seal(session.trace.meta)
        loaded = TraceLog.load(path)
        assert loaded.switches == session.trace.switches
        assert loaded.values == session.trace.values
        result = replay(_program(), loaded, config=CFG)
        assert result.heap_digest == session.result.heap_digest

    def test_compressed_recording_replays_identically(self, tmp_path):
        plain, packed = tmp_path / "p.djv", tmp_path / "z.djv"
        a = _record_to(plain, compress=False)
        b = _record_to(packed, compress=True)
        assert a.result.heap_digest == b.result.heap_digest
        ta, tb = TraceLog.load(plain), TraceLog.load(packed)
        assert ta.switches == tb.switches and ta.values == tb.values
        ra = replay(_program(), ta, config=CFG)
        rb = replay(_program(), tb, config=CFG)
        assert ra.heap_digest == rb.heap_digest == a.result.heap_digest

    def test_torn_compressed_recording_salvages(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path, compress=True)
        blob = path.read_bytes()
        torn = tmp_path / "torn.djv"
        for num, den in ((1, 2), (9, 10)):  # cut mid-file and late
            torn.write_bytes(blob[: len(blob) * num // den])
            trace = TraceLog.salvage(torn)
            assert trace.truncated
            prefix = replay_prefix(_program(), trace, config=CFG)
            assert prefix.result is not None


class TestUnknownCodecByte:
    def _patch_first_segment_codec(self, path, value):
        blob = bytearray(path.read_bytes())
        blob[_HEADER + 1] = value  # codec byte of the first (stream) segment
        path.write_bytes(bytes(blob))

    def test_load_rejects_unknown_codec(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path)
        self._patch_first_segment_codec(path, 0x04)  # outside _CODEC_MASK
        with pytest.raises(TraceFormatError, match="unknown segment codec"):
            TraceLog.load(path)

    def test_doctor_classifies_codec_mismatch(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path)
        self._patch_first_segment_codec(path, 0x04)
        report = diagnose(path, program=_program(), config=CFG)
        assert report.classification == CLASS_CODEC
        assert report.exit_code == 2


# ---------------------------------------------------------------------------
# trace-stats


class TestTraceStats:
    def test_stats_report_shape_and_ratio(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path)
        stats = trace_stats(path)
        assert stats["format_version"] == (3 << 8) | 1
        assert stats["file_bytes"] == path.stat().st_size
        switch = stats["streams"]["switch"]
        assert switch["entries"] > 0
        assert switch["encoded_bytes"] > 0
        # group coding never loses to raw varints by more than the tag
        assert switch["encoded_bytes"] <= switch["raw_bytes"] + switch["segments"]
        assert switch["ratio"] == pytest.approx(
            switch["raw_bytes"] / switch["encoded_bytes"]
        )

    def test_cli_trace_stats(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.djv"
        _record_to(path)
        assert main(["trace-stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "switch" in out and "value" in out
        assert "3.1" in out

    def test_cli_trace_stats_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "x.djv"
        path.write_bytes(b"definitely not a trace")
        assert main(["trace-stats", str(path)]) == 2

    def test_stats_walk_matches_segment_boundaries(self, tmp_path):
        path = tmp_path / "t.djv"
        _record_to(path)
        stats = trace_stats(path)
        n_segments = sum(s["segments"] for s in stats["streams"].values())
        # stream segments + meta + footer == every framed segment
        assert n_segments + 2 == len(segment_boundaries(path.read_bytes()))
