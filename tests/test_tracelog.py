"""Trace encoding, persistence, and the guest-heap buffers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vm import VirtualMachine
from repro.vm.errors import VMError
from repro.core.tracelog import (
    TraceBuffer,
    TraceLog,
    decode_words,
    encode_words,
    read_varint,
    unzigzag,
    write_varint,
    zigzag,
)
from tests.conftest import TEST_CONFIG

words_lists = st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40), max_size=200)


class TestVarints:
    @given(st.integers(min_value=-(1 << 62), max_value=1 << 62))
    def test_zigzag_roundtrip(self, n):
        assert unzigzag(zigzag(n)) == n

    def test_zigzag_small_values_small(self):
        assert zigzag(0) == 0
        assert zigzag(-1) == 1
        assert zigzag(1) == 2
        assert zigzag(-2) == 3

    @given(st.integers(min_value=-(1 << 62), max_value=1 << 62))
    def test_varint_roundtrip(self, n):
        out = bytearray()
        write_varint(out, n)
        value, pos = read_varint(bytes(out), 0)
        assert value == n and pos == len(out)

    def test_small_values_one_byte(self):
        for n in range(-63, 64):
            out = bytearray()
            write_varint(out, n)
            assert len(out) == 1

    def test_truncated_raises(self):
        out = bytearray()
        write_varint(out, 1 << 40)
        with pytest.raises(VMError):
            read_varint(bytes(out[:-1]), 0)

    @given(words_lists)
    def test_stream_roundtrip(self, ws):
        assert decode_words(encode_words(ws)) == ws


#: every power-of-two boundary a word-width encoder could trip over
_BOUNDARIES = sorted(
    {
        sign * ((1 << bits) + delta)
        for bits in (31, 32, 62, 63, 64)
        for delta in (-2, -1, 0, 1, 2)
        for sign in (1, -1)
    }
    | {0, 1, -1}
)


class TestVarintBoundaries:
    """Word-width edges.  The classic ``(n << 1) ^ (n >> 63)`` zig-zag is
    only correct on a machine that wraps at 64 bits; in Python it goes
    negative for ``n < -(1 << 63)`` and ``write_varint`` then never
    terminates.  These tests pin the arbitrary-precision-safe encoding."""

    @pytest.mark.parametrize("n", _BOUNDARIES)
    def test_boundary_roundtrip(self, n):
        out = bytearray()
        write_varint(out, n)
        value, pos = read_varint(bytes(out), 0)
        assert value == n and pos == len(out)

    @pytest.mark.parametrize("n", _BOUNDARIES)
    def test_zigzag_code_is_nonnegative(self, n):
        # the property whose violation made write_varint spin forever
        code = zigzag(n)
        assert code >= 0
        assert unzigzag(code) == n

    def test_regression_just_below_word_min(self):
        # the exact first value the old shift-based zigzag mangled
        n = -(1 << 63) - 1
        assert zigzag(n) == 2 * (1 << 63) + 1
        assert unzigzag(zigzag(n)) == n

    def test_matches_shift_form_within_word_range(self):
        # inside the 64-bit word range the encoding must stay identical
        # to the classic form — traces written before the fix still load
        for n in (0, 1, -1, 5, -5, (1 << 63) - 1, -(1 << 63)):
            assert zigzag(n) == ((n << 1) ^ (n >> 63)) & ((1 << 64) - 1)

    @given(st.integers(min_value=-(1 << 70), max_value=1 << 70))
    def test_wide_roundtrip(self, n):
        out = bytearray()
        write_varint(out, n)
        value, pos = read_varint(bytes(out), 0)
        assert value == n and pos == len(out)


class TestTraceLog:
    @given(words_lists, words_lists)
    def test_save_load_roundtrip(self, switches, values):
        import tempfile, os

        log = TraceLog(switches=switches, values=values)
        log.meta["end"] = (("cycles", 42),)
        fd, path = tempfile.mkstemp(suffix=".djv")
        os.close(fd)
        try:
            log.save(path)
            loaded = TraceLog.load(path)
            assert loaded.switches == switches
            assert loaded.values == values
            assert dict(loaded.meta["end"]) == {"cycles": 42}
        finally:
            os.unlink(path)

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "x.djv"
        p.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(VMError):
            TraceLog.load(p)

    def test_size_accounting(self):
        log = TraceLog(switches=[1, 2, 3], values=[100])
        assert log.n_switch_records == 3
        assert log.n_value_words == 1
        assert log.encoded_size_bytes == len(encode_words([1, 2, 3])) + len(
            encode_words([100])
        )


class TestTraceBuffer:
    def make(self, capacity=4):
        vm = VirtualMachine(TEST_CONFIG)
        return vm, TraceBuffer(vm, capacity)

    def test_put_flush_roundtrip(self):
        vm, buf = self.make(4)
        sink: list[int] = []
        for w in [5, -3, 7, 9, 11]:  # fifth put forces a flush
            buf.put(w, sink)
        assert sink == [5, -3, 7, 9]
        buf.flush(sink)
        assert sink == [5, -3, 7, 9, 11]
        assert buf.flushes == 2

    def test_take_refills(self):
        vm, buf = self.make(3)
        source = [1, 2, 3, 4, 5]
        cursor = 0
        out = []
        for _ in range(5):
            w, cursor = buf.take(source, cursor)
            out.append(w)
        assert out == source
        assert buf.refills == 2

    def test_take_exhausted_returns_none(self):
        vm, buf = self.make(3)
        w, cursor = buf.take([], 0)
        assert w is None

    def test_buffer_lives_in_guest_heap(self):
        vm, buf = self.make(8)
        buf.allocate()
        assert vm.om.array_length(buf.addr) == 8
        layout = vm.om.layout_of(buf.addr)
        assert layout.is_array and layout.elem_desc == "I"

    def test_zero_erases(self):
        vm, buf = self.make(4)
        sink: list[int] = []
        buf.put(99, sink)
        buf.zero()
        assert vm.om.array_get(buf.addr, 0) == 0

    def test_survives_gc(self):
        vm, buf = self.make(4)
        sink: list[int] = []
        buf.put(42, sink)
        vm.extra_root_visitors.append(buf.visit_roots)
        old = buf.addr
        vm.collect()
        assert buf.addr != old
        buf.put(43, sink)
        buf.flush(sink)
        assert sink == [42, 43]

    def test_drain_hook_fires(self):
        vm, buf = self.make(2)
        kinds = []
        buf.on_drain = kinds.append
        sink: list[int] = []
        for w in range(5):
            buf.put(w, sink)
        assert kinds == ["flush", "flush"]  # puts 3 and 5 hit a full buffer
        buf.flush(sink)
        cursor = 0
        buf2 = TraceBuffer(vm, 2)
        buf2.on_drain = kinds.append
        for _ in range(5):
            _, cursor = buf2.take(sink, cursor)
        assert kinds.count("refill") == 3
