"""End-to-end integration: seed sweeps, cross-heap invariants, persistence.

The central property — the paper's accuracy requirement — as a sweep:
for every workload and many injected non-determinism seeds, the replayed
execution equals the recorded one event-for-event.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import record, record_and_replay, replay
from repro.core import compare_runs
from repro.vm.machine import VMConfig
from repro.workloads import ALL_WORKLOADS, producer_consumer, racy_bank
from tests.conftest import jitter_knobs

CFG = VMConfig(semispace_words=70_000)


class TestSeedSweep:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        lo=st.integers(min_value=5, max_value=100),
        span=st.integers(min_value=1, max_value=400),
    )
    def test_racy_bank_replays_for_any_timer(self, seed, lo, span):
        """Property: whatever the preemption pattern, replay is faithful."""
        session, replayed, report = record_and_replay(
            racy_bank(), config=CFG, **jitter_knobs(seed, lo, lo + span)
        )
        assert report.faithful, report.detail

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_producer_consumer_replays(self, seed):
        session, replayed, report = record_and_replay(
            producer_consumer(), config=CFG, **jitter_knobs(seed, 20, 150)
        )
        assert report.faithful, report.detail

    def test_divergent_recordings_replay_to_their_own_outcomes(self):
        """Two recordings with different outcomes each replay to *their*
        outcome — replay is tied to the trace, not the program."""
        outcomes = {}
        for seed in range(12):
            session = record(racy_bank(), config=CFG, **jitter_knobs(seed, 20, 90))
            outcomes.setdefault(session.result.output_text, session)
            if len(outcomes) >= 2:
                break
        assert len(outcomes) >= 2, "timer jitter failed to produce divergence"
        for text, session in outcomes.items():
            replayed = replay(racy_bank(), session.trace, config=CFG)
            assert replayed.output_text == text


class TestHeapSizeInvariance:
    def test_trace_is_heap_size_specific(self):
        """Replay must run under the recorded heap geometry: GC points
        depend on it.  Same size: faithful."""
        small = VMConfig(semispace_words=9_000)
        from repro.workloads import gc_churn

        session = record(gc_churn(iters=600), config=small, **jitter_knobs(3))
        assert session.result.gc_count > 0
        replayed = replay(gc_churn(iters=600), session.trace, config=small)
        assert compare_runs(session.result, replayed).faithful


class TestTracePersistence:
    @pytest.mark.parametrize("name", ["server", "philosophers", "gc_churn"])
    def test_save_load_replay_per_workload(self, name, tmp_path):
        factory = ALL_WORKLOADS[name]
        session = record(factory(), config=CFG, **jitter_knobs(6))
        path = tmp_path / f"{name}.djv"
        session.trace.save(path)
        from repro.core import TraceLog

        loaded = TraceLog.load(path)
        assert loaded.meta == session.trace.meta
        replayed = replay(factory(), loaded, config=CFG)
        assert compare_runs(session.result, replayed).faithful

    def test_trace_bytes_compact(self, tmp_path):
        session = record(racy_bank(), config=CFG, **jitter_knobs(6))
        path = tmp_path / "t.djv"
        session.trace.save(path)
        # a racy-bank trace is tens of bytes of payload, not kilobytes
        assert path.stat().st_size < 2000


class TestReplayChain:
    def test_replay_is_idempotent_fixture_for_tools(self):
        """Replay N times; every replay has the identical behaviour key —
        the property every DejaVu-based tool depends on."""
        session = record(racy_bank(), config=CFG, **jitter_knobs(8))
        keys = {
            replay(racy_bank(), session.trace, config=CFG).behavior_key()
            for _ in range(3)
        }
        assert len(keys) == 1
        assert keys.pop() == session.result.behavior_key()
