"""Differential testing: the tool interpreter vs the compiled engine.

The tool VM "interprets the same reflection methods" the application VM
runs compiled (Figure 4).  For deterministic single-threaded code the two
execution engines must agree exactly — a strong cross-check on both.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.remote import DebugPort, ToolInterpreter
from repro.vm import VirtualMachine, assemble
from repro.vm import words
from tests.conftest import TEST_CONFIG


def both_engines(src: str, call: str, args: list[int]):
    """Run Class.method via the compiled engine (through a main wrapper)
    and via the tool interpreter; return (engine_result, tool_result)."""
    # engine side: wrap in a main that prints the result
    arg_pushes = "\n".join(f"    iconst {a}" for a in args)
    wrapper = f"""
.class Main
.method static main ()V
{arg_pushes}
    invokestatic {call}
    invokestatic System.printInt(I)V
    return
.end
"""
    vm1 = VirtualMachine(TEST_CONFIG)
    vm1.declare(assemble(src + wrapper))
    engine_result = int(vm1.run().output_text)

    vm2 = VirtualMachine(TEST_CONFIG)
    vm2.declare(assemble(src))
    # self-inspection port: the tool interpreter needs *a* remote VM, but
    # these methods never touch remote objects
    tool = ToolInterpreter(vm2, DebugPort(vm2))
    tool_result = tool.call(call, list(args))
    return engine_result, words.to_i32(tool_result)


ARITH_SRC = """
.class F
.method static mix (II)I
    iload 0
    iload 1
    iadd
    iload 0
    iload 1
    isub
    imul
    iload 1
    iconst 3
    ior
    ixor
    ireturn
.end
.method static collatz (I)I
    iconst 0
    istore 1
loop:
    iload 0
    iconst 1
    if_icmple done
    iload 0
    iconst 2
    irem
    ifne odd
    iload 0
    iconst 2
    idiv
    istore 0
    goto next
odd:
    iload 0
    iconst 3
    imul
    iconst 1
    iadd
    istore 0
next:
    iinc 1 1
    iload 1
    iconst 200
    if_icmpge done
    goto loop
done:
    iload 1
    ireturn
.end
.method static arrays (I)I
    iload 0
    iconst 1
    iadd
    newarray
    astore 1
    iconst 0
    istore 2
fill:
    iload 2
    aload 1
    arraylength
    if_icmpge sum
    aload 1
    iload 2
    iload 2
    iload 2
    imul
    iastore
    iinc 2 1
    goto fill
sum:
    iconst 0
    istore 3
    iconst 0
    istore 2
add:
    iload 2
    aload 1
    arraylength
    if_icmpge out
    iload 3
    aload 1
    iload 2
    iaload
    iadd
    istore 3
    iinc 2 1
    goto add
out:
    iload 3
    ireturn
.end
"""


class TestDifferential:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=words.I32_MIN, max_value=words.I32_MAX),
        st.integers(min_value=words.I32_MIN, max_value=words.I32_MAX),
    )
    def test_mix_agrees(self, a, b):
        e, t = both_engines(ARITH_SRC, "F.mix(II)I", [a, b])
        assert e == t

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=10_000))
    def test_collatz_agrees(self, n):
        e, t = both_engines(ARITH_SRC, "F.collatz(I)I", [n])
        assert e == t

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=60))
    def test_arrays_agree(self, n):
        e, t = both_engines(ARITH_SRC, "F.arrays(I)I", [n])
        assert e == t

    def test_objects_and_virtual_calls_agree(self):
        src = """
.class Shape
.field scale I
.method area (I)I
    iload 1
    aload 0
    getfield Shape.scale I
    imul
    ireturn
.end
.class Square
.super Shape
.method area (I)I
    iload 1
    iload 1
    imul
    aload 0
    getfield Shape.scale I
    imul
    ireturn
.end
.class F
.method static go (I)I
    new Square
    astore 1
    aload 1
    iconst 3
    putfield Shape.scale I
    aload 1
    iload 0
    invokevirtual Shape.area(I)I
    ireturn
.end
"""
        e, t = both_engines(src, "F.go(I)I", [7])
        assert e == t == 7 * 7 * 3

    def test_trap_parity_div_zero(self):
        from repro.vm.errors import VMTrap

        src = """
.class F
.method static boom ()I
    iconst 1
    iconst 0
    idiv
    ireturn
.end
"""
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(assemble(src))
        tool = ToolInterpreter(vm, DebugPort(vm))
        with pytest.raises(VMTrap):
            tool.call("F.boom()I", [])
