"""Multi-host campaigns: the remote protocol, the worker daemon, the
fault-tolerant pool, and the equivalence contract.

The headline claim mirrors the jobs=1 ≡ jobs=N differential: running a
campaign over **remote workers** — one host, three loopback hosts, or a
host list that is actively failing — produces the *same* report digest
and a **byte-identical** corpus as the local fork backend.  The ladder
(remote host → another host → local fork → inline) makes coverage
unconditional; these tests arm every sabotage kind and check that the
only observable difference is a typed :class:`WorkerIncident`.

Fast paths use in-process :class:`WorkerServer` threads; kinds that must
kill a process (``remote-kill-worker``) use the real ``repro worker``
subprocess.  The slowest sabotage kinds (stall, slow-connect) are
``fuzz``-marked and run in the CI remote-smoke job.
"""

import pickle
import socket
from pathlib import Path

import pytest

from repro.campaign import (
    RemoteWorkerPool,
    WorkerServer,
    run_explore_campaign,
    run_faults_campaign,
    shutdown_worker,
    spawn_worker_process,
)
from repro.campaign.remote import (
    MAX_REMOTE_FRAME_BYTES,
    PROTOCOL_VERSION,
    SABOTAGE_KINDS,
    decode_payload,
    encode_message,
    parse_sabotage,
    payload_key,
)
from repro.core.framing import BackoffPolicy, FrameDecoder, FrameError, TransportError
from repro.faults import KINDS, LAYER_REMOTE, FaultPlan
from repro.faults.inject import remote_sabotage
from repro.vm.machine import VMConfig

CFG = VMConfig(semispace_words=60_000)
#: a tight schedule so failure-path tests spend milliseconds, not seconds
FAST = BackoffPolicy(attempts=3, base_delay=0.01, max_delay=0.05, jitter_seed=0)


def corpus_files(root) -> "dict[str, bytes]":
    return {
        p.name: p.read_bytes() for p in sorted(Path(root).iterdir()) if p.is_file()
    }


def dead_address():
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


@pytest.fixture
def server():
    worker = WorkerServer().start()
    yield worker
    worker.stop()


@pytest.fixture
def servers():
    started = []

    def make(count=1, sabotage=None):
        for _ in range(count):
            started.append(WorkerServer(sabotage=sabotage).start())
        return started[-count:]

    yield make
    for worker in started:
        worker.stop()


def pool_for(workers, **kwargs):
    kwargs.setdefault("backoff", FAST)
    kwargs.setdefault("hello_timeout", 2.0)
    return RemoteWorkerPool([w.address for w in workers], **kwargs)


def incident_kinds(report):
    return {incident.kind for incident in report.incidents}


class RawClient:
    """A bare protocol speaker for poking the daemon directly."""

    def __init__(self, address, timeout=5.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.decoder = FrameDecoder(MAX_REMOTE_FRAME_BYTES)

    def send(self, message):
        self.sock.sendall(encode_message(message))

    def send_raw(self, data):
        self.sock.sendall(data)

    def recv(self):
        """Next decoded message, or None on EOF."""
        while True:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            payloads = self.decoder.feed(chunk)
            if payloads:
                return decode_payload(payloads[0])

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# wire protocol units


class TestWireProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "item", "index": 3, "result": {"digest": "d", "blob": b"\x00" * 100}}
        decoder = FrameDecoder(MAX_REMOTE_FRAME_BYTES)
        payloads = decoder.feed(encode_message(message))
        assert len(payloads) == 1
        assert decode_payload(payloads[0]) == message

    def test_round_trip_survives_arbitrary_chunking(self):
        messages = [
            {"op": "ping"},
            {"op": "item", "index": 0},
            {"op": "shard-done", "completed": 2},
        ]
        wire = b"".join(encode_message(m) for m in messages)
        decoder = FrameDecoder(MAX_REMOTE_FRAME_BYTES)
        seen = []
        for i in range(0, len(wire), 3):  # 3-byte dribble: worst-case reads
            seen.extend(decode_payload(p) for p in decoder.feed(wire[i : i + 3]))
        assert seen == messages
        assert decoder.pending_bytes == 0

    def test_corrupted_frame_fails_its_crc(self):
        frame = bytearray(encode_message({"op": "pong"}))
        frame[-1] ^= 0x01  # flip a bit inside the pickled region
        payloads = FrameDecoder(MAX_REMOTE_FRAME_BYTES).feed(bytes(frame))
        with pytest.raises(FrameError, match="CRC32"):
            decode_payload(payloads[0])

    def test_short_payload_rejected(self):
        with pytest.raises(FrameError, match="too short"):
            decode_payload(b"\x00\x01")

    def test_unpicklable_payload_rejected(self):
        import zlib

        blob = b"not a pickle at all"
        crc = (zlib.crc32(blob) & 0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(FrameError, match="does not unpickle"):
            decode_payload(crc + blob)

    def test_non_dict_message_rejected(self):
        import zlib

        blob = pickle.dumps(["op", "hello"])
        crc = (zlib.crc32(blob) & 0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(FrameError, match="dict with an 'op'"):
            decode_payload(crc + blob)

    def test_payload_key_is_stable_and_discriminating(self):
        a = {"kind": "explore", "seed": 0}
        assert payload_key(a) == payload_key(dict(a))
        assert payload_key(a) != payload_key({"kind": "explore", "seed": 1})

    def test_parse_sabotage_forms(self):
        assert parse_sabotage("remote-drop-frame") == {"kind": "remote-drop-frame"}
        assert parse_sabotage("remote-kill-worker:0.5") == {
            "kind": "remote-kill-worker",
            "frac": 0.5,
        }
        assert parse_sabotage("remote-corrupt-frame:0.5:3") == {
            "kind": "remote-corrupt-frame",
            "frac": 0.5,
            "bit": 3,
        }
        assert parse_sabotage("remote-slow-connect::0.75") == {
            "kind": "remote-slow-connect",
            "delay": 0.75,
        }

    def test_parse_sabotage_rejects_unknown_kind(self):
        with pytest.raises(TransportError, match="unknown sabotage kind"):
            parse_sabotage("remote-set-on-fire")


# ---------------------------------------------------------------------------
# the daemon, poked directly


class TestWorkerServer:
    def test_handshake_ping_shutdown(self):
        worker = WorkerServer().start()
        client = RawClient(worker.address)
        try:
            client.send({"op": "hello", "version": PROTOCOL_VERSION})
            reply = client.recv()
            assert reply["op"] == "hello-ok"
            assert reply["version"] == PROTOCOL_VERSION
            assert isinstance(reply["pid"], int)
            client.send({"op": "ping"})
            assert client.recv() == {"op": "pong"}
        finally:
            client.close()
        assert shutdown_worker(worker.address)
        worker.stop()

    def test_version_mismatch_is_refused(self, server):
        client = RawClient(server.address)
        try:
            client.send({"op": "hello", "version": 999})
            reply = client.recv()
            assert reply["op"] == "error"
            assert "version mismatch" in reply["detail"]
            assert client.recv() is None  # connection closed after refusal
        finally:
            client.close()

    def test_unknown_op_is_an_error_frame_not_a_crash(self, server):
        client = RawClient(server.address)
        try:
            client.send({"op": "make-coffee"})
            reply = client.recv()
            assert reply["op"] == "error"
            assert "unknown op" in reply["detail"]
            client.send({"op": "ping"})  # connection survived the bad op
            assert client.recv() == {"op": "pong"}
        finally:
            client.close()

    def test_garbage_bytes_survive_and_count(self, server):
        client = RawClient(server.address)
        try:
            client.send_raw(b"\xff" * 64)  # absurd length prefix
            reply = client.recv()
            assert reply is None or reply["op"] == "error"
        finally:
            client.close()
        assert server.frame_errors == 1
        # the accept loop survived: a fresh connection still handshakes
        client = RawClient(server.address)
        try:
            client.send({"op": "hello", "version": PROTOCOL_VERSION})
            assert client.recv()["op"] == "hello-ok"
        finally:
            client.close()
        assert server.connections_served == 2

    def test_crc_corrupt_request_counts_as_frame_error(self, server):
        frame = bytearray(encode_message({"op": "ping"}))
        frame[-1] ^= 0x80
        client = RawClient(server.address)
        try:
            client.send_raw(bytes(frame))
            reply = client.recv()
            assert reply is None or "CRC32" in reply.get("detail", "")
        finally:
            client.close()
        assert server.frame_errors == 1

    def test_warm_runner_is_cached_across_shards(self, server):
        report = run_explore_campaign(
            "bank",
            bound=1,
            budget=12,
            jobs=2,
            config=CFG,
            backend=pool_for([server]),
        )
        assert not report.errors
        assert server.shards_served == 2  # one connection per shard...
        assert len(server._runners) == 1  # ...one warm runner for both


# ---------------------------------------------------------------------------
# the equivalence contract: remote ≡ local, even under fire


class TestRemoteDifferential:
    def test_one_host_equals_local(self, tmp_path, servers):
        (worker,) = servers(1)
        local = run_explore_campaign(
            "bank", bound=1, budget=25, jobs=2, config=CFG,
            corpus_dir=tmp_path / "local",
        )
        remote = run_explore_campaign(
            "bank", bound=1, budget=25, jobs=2, config=CFG,
            corpus_dir=tmp_path / "remote",
            backend=pool_for([worker]),
        )
        assert remote.digest() == local.digest()
        assert remote.behavior_set() == local.behavior_set()
        assert not remote.incidents
        assert corpus_files(tmp_path / "remote") == corpus_files(tmp_path / "local")

    def test_three_hosts_equal_one_host_equal_local(self, tmp_path, servers):
        trio = servers(3)
        (solo,) = servers(1)
        runs = {
            "local": run_explore_campaign(
                "bank", bound=1, budget=30, jobs=3, config=CFG,
                corpus_dir=tmp_path / "local",
            ),
            "one": run_explore_campaign(
                "bank", bound=1, budget=30, jobs=3, config=CFG,
                corpus_dir=tmp_path / "one", backend=pool_for([solo]),
            ),
            "three": run_explore_campaign(
                "bank", bound=1, budget=30, jobs=3, config=CFG,
                corpus_dir=tmp_path / "three", backend=pool_for(trio),
            ),
        }
        digests = {name: report.digest() for name, report in runs.items()}
        assert len(set(digests.values())) == 1, digests
        assert (
            corpus_files(tmp_path / "local")
            == corpus_files(tmp_path / "one")
            == corpus_files(tmp_path / "three")
        )

    def test_hosts_argument_builds_the_pool(self, servers):
        (worker,) = servers(1)
        local = run_explore_campaign("bank", bound=1, budget=15, jobs=2, config=CFG)
        remote = run_explore_campaign(
            "bank", bound=1, budget=15, jobs=2, config=CFG,
            hosts=[worker.address],
        )
        assert remote.digest() == local.digest()

    def test_faults_campaign_remote_equals_local(self, servers):
        plan = FaultPlan.generate(5, 6, layers=("trace",))
        local = run_faults_campaign(
            plan, workload="bank", layers=("trace",), config=CFG, jobs=2
        )
        remote = run_faults_campaign(
            plan, workload="bank", layers=("trace",), config=CFG, jobs=2,
            backend=pool_for(servers(2)),
        )
        assert remote.digest() == local.digest()
        assert remote.report.tally() == local.report.tally()
        assert not remote.incidents

    @pytest.mark.parametrize(
        "sabotage, expected_incident",
        [
            ("remote-drop-frame:0.5", "remote-protocol"),
            ("remote-corrupt-frame:0.5:3", "remote-protocol"),
            ("remote-truncate-frame:0.5", "remote-transport"),
        ],
    )
    def test_armed_host_perturbs_nothing(
        self, tmp_path, servers, sabotage, expected_incident
    ):
        """One host misbehaves once, mid-shard; the report and corpus
        are byte-for-byte those of a clean local run, plus a typed
        incident."""
        armed = servers(1, sabotage=parse_sabotage(sabotage))
        clean = servers(1)
        local = run_explore_campaign(
            "bank", bound=1, budget=20, jobs=2, config=CFG,
            corpus_dir=tmp_path / "local",
        )
        remote = run_explore_campaign(
            "bank", bound=1, budget=20, jobs=2, config=CFG,
            corpus_dir=tmp_path / "remote",
            backend=pool_for(armed + clean),
        )
        assert remote.digest() == local.digest()
        assert expected_incident in incident_kinds(remote)
        assert corpus_files(tmp_path / "remote") == corpus_files(tmp_path / "local")

    def test_killed_worker_degrades_without_perturbing(self, tmp_path):
        """The real crash path: a `repro worker` subprocess os._exits
        mid-shard; reconnects fail, the breaker opens, and the ladder
        carries the leftovers to local fork workers."""
        proc, address = spawn_worker_process("remote-kill-worker:0.5")
        try:
            local = run_explore_campaign(
                "bank", bound=1, budget=16, jobs=2, config=CFG,
                corpus_dir=tmp_path / "local",
            )
            remote = run_explore_campaign(
                "bank", bound=1, budget=16, jobs=2, config=CFG,
                corpus_dir=tmp_path / "remote",
                backend=RemoteWorkerPool(
                    [address], backoff=FAST, hello_timeout=1.0, breaker_threshold=2
                ),
            )
        finally:
            proc.kill()
            proc.wait(timeout=10)
        assert remote.digest() == local.digest()
        kinds = incident_kinds(remote)
        assert "quarantine" in kinds
        assert "degraded-local" in kinds
        assert corpus_files(tmp_path / "remote") == corpus_files(tmp_path / "local")

    def test_no_hosts_alive_degrades_to_local(self, tmp_path):
        """Rung 3 alone: nothing listens anywhere, yet coverage is 100%
        and the result is still the local result."""
        local = run_explore_campaign("bank", bound=1, budget=12, jobs=2, config=CFG)
        remote = run_explore_campaign(
            "bank", bound=1, budget=12, jobs=2, config=CFG,
            backend=RemoteWorkerPool(
                [dead_address()], backoff=FAST, hello_timeout=0.5, breaker_threshold=1
            ),
        )
        assert remote.digest() == local.digest()
        assert not remote.errors
        assert remote.schedules_run == local.schedules_run
        kinds = incident_kinds(remote)
        assert {"remote-connect", "quarantine", "degraded-local"} <= kinds

    @pytest.mark.fuzz
    def test_stalled_heartbeat_trips_the_watchdog(self, tmp_path, servers):
        armed = servers(1, sabotage=parse_sabotage("remote-stall-heartbeat:0.5"))
        local = run_explore_campaign("bank", bound=1, budget=16, jobs=2, config=CFG)
        remote = run_explore_campaign(
            "bank", bound=1, budget=16, jobs=2, config=CFG, watchdog=1.0,
            backend=RemoteWorkerPool(
                [w.address for w in armed],
                backoff=FAST,
                hello_timeout=0.3,
                breaker_threshold=2,
            ),
        )
        assert remote.digest() == local.digest()
        assert "remote-hang" in incident_kinds(remote)

    @pytest.mark.fuzz
    def test_slow_connect_is_absorbed_by_backoff(self, servers):
        """A slow-loris handshake costs one retry, not an incident: the
        hello timeout plus the backoff schedule absorb it entirely."""
        armed = servers(1, sabotage=parse_sabotage("remote-slow-connect::0.8"))
        local = run_explore_campaign("bank", bound=1, budget=12, jobs=2, config=CFG)
        remote = run_explore_campaign(
            "bank", bound=1, budget=12, jobs=2, config=CFG,
            backend=RemoteWorkerPool(
                [w.address for w in armed], backoff=FAST, hello_timeout=0.3
            ),
        )
        assert remote.digest() == local.digest()
        assert not remote.incidents


# ---------------------------------------------------------------------------
# daemon lifecycle


class TestWorkerLifecycle:
    def test_spawn_and_shutdown_subprocess(self):
        proc, address = spawn_worker_process()
        try:
            assert shutdown_worker(address)
            assert proc.wait(timeout=10) == 0
        finally:
            proc.kill()

    def test_shutdown_worker_on_dead_address_is_false(self):
        assert not shutdown_worker(dead_address(), timeout=0.5)


# ---------------------------------------------------------------------------
# the LAYER_REMOTE fault family


class TestRemoteFaultPlan:
    def test_remote_kinds_are_registered(self):
        remote_kinds = [k for k, layer in KINDS.items() if layer == LAYER_REMOTE]
        assert remote_kinds == list(SABOTAGE_KINDS)

    def test_remote_plans_are_reproducible(self):
        a = FaultPlan.generate(11, 12, layers=(LAYER_REMOTE,))
        b = FaultPlan.generate(11, 12, layers=(LAYER_REMOTE,))
        assert a.specs == b.specs
        assert {s.layer for s in a} == {LAYER_REMOTE}

    def test_default_layers_exclude_remote(self):
        """Appending remote kinds must not disturb seeded default plans
        (the plan-reproducibility contract of old sweeps)."""
        plan = FaultPlan.generate(3, 40)
        assert all(s.layer != LAYER_REMOTE for s in plan)

    def test_remote_sabotage_arming_strings(self):
        plan = FaultPlan.generate(2, 30, layers=(LAYER_REMOTE,))
        for spec in plan:
            armed = remote_sabotage(spec)
            parsed = parse_sabotage(armed)  # round-trips through the CLI syntax
            assert parsed["kind"] == spec.kind
            if spec.kind == "remote-corrupt-frame":
                assert parsed["bit"] == spec.params[1]
            elif spec.kind == "remote-slow-connect":
                assert parsed["delay"] == spec.params[0]

    def test_remote_sabotage_rejects_other_layers(self):
        plan = FaultPlan.generate(3, 1, layers=("trace",))
        with pytest.raises(ValueError):
            remote_sabotage(plan.specs[0])

    @pytest.mark.fuzz
    def test_remote_fault_campaign_recovers(self, tmp_path):
        """The serial `repro faults --layers remote` path end to end:
        every injected remote fault is absorbed and classified."""
        from repro.faults import run_campaign

        report = run_campaign(
            FaultPlan.generate(7, 3, layers=(LAYER_REMOTE,)),
            workload="bank",
            config=CFG,
            workdir=tmp_path,
        )
        assert report.ok, report.format()
        for outcome in report.outcomes:
            assert outcome.outcome in ("recovered", "degraded")
