"""DejaVu record/replay: accuracy across workloads, online divergence checks."""

import pytest

from repro.api import GuestProgram, record, record_and_replay, replay
from repro.core import MODE_RECORD, MODE_REPLAY, DejaVu, TraceLog
from repro.core import compare_runs
from repro.vm.errors import ReplayDivergenceError, VMError
from repro.vm.machine import VMConfig
from repro.workloads import ALL_WORKLOADS, racy_bank, server
from tests.conftest import jitter_knobs

CFG = VMConfig(semispace_words=70_000)


class TestFaithfulReplay:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    @pytest.mark.parametrize("seed", [1, 17])
    def test_workload_replays_exactly(self, name, seed):
        factory = ALL_WORKLOADS[name]
        session, replayed, report = record_and_replay(
            factory(), config=CFG, **jitter_knobs(seed, 30, 150)
        )
        assert report.faithful, report.detail

    def test_replay_of_saved_trace_file(self, tmp_path):
        session = record(racy_bank(), config=CFG, **jitter_knobs(3))
        path = tmp_path / "run.djv"
        session.trace.save(path)
        loaded = TraceLog.load(path)
        replayed = replay(racy_bank(), loaded, config=CFG)
        assert compare_runs(session.result, replayed).faithful

    def test_replay_is_repeatable(self):
        session = record(racy_bank(), config=CFG, **jitter_knobs(5))
        r1 = replay(racy_bank(), session.trace, config=CFG)
        r2 = replay(racy_bank(), session.trace, config=CFG)
        assert r1.behavior_key() == r2.behavior_key()

    def test_cycle_counts_identical(self):
        session, replayed, report = record_and_replay(
            racy_bank(), config=CFG, **jitter_knobs(9)
        )
        assert session.result.cycles == replayed.cycles
        assert session.result.yieldpoints == replayed.yieldpoints

    def test_heap_digest_identical(self):
        session, replayed, _ = record_and_replay(
            racy_bank(), config=CFG, **jitter_knobs(9)
        )
        assert session.result.heap_digest == replayed.heap_digest

    def test_deterministic_switch_events_not_logged(self):
        """synced_bank switches mostly via monitors; the trace only holds
        the preemptive ones."""
        from repro.workloads import synced_bank

        session = record(synced_bank(), config=CFG, **jitter_knobs(2))
        assert session.trace.n_switch_records < session.result.switches

    def test_native_results_replayed(self):
        session, replayed, report = record_and_replay(
            server(seed=5), config=CFG, **jitter_knobs(5)
        )
        assert report.faithful
        rec_natives = [e for e in session.result.events if e[0] == "native"]
        rep_natives = [e for e in replayed.events if e[0] == "native"]
        assert rec_natives == rep_natives and rec_natives

    def test_callback_parameters_regenerated(self):
        session, replayed, report = record_and_replay(
            server(seed=6), config=CFG, **jitter_knobs(6)
        )
        assert report.faithful
        assert session.stats["upcall_records"] > 0
        # the guest-visible statistics came from callbacks
        assert "packets=" in replayed.output_text

    def test_clock_values_replayed(self):
        session, replayed, report = record_and_replay(
            server(seed=8), config=CFG, **jitter_knobs(8)
        )
        rec_clocks = [e for e in session.result.events if e[0] == "clock"]
        rep_clocks = [e for e in replayed.events if e[0] == "clock"]
        assert rec_clocks == rep_clocks and rec_clocks

    def test_small_buffers_still_faithful(self):
        session = record(
            server(seed=4),
            config=CFG,
            **jitter_knobs(4),
            switch_buffer_words=8,
            value_buffer_words=8,
        )
        replayed = replay(
            server(seed=4),
            session.trace,
            config=CFG,
            switch_buffer_words=8,
            value_buffer_words=8,
        )
        assert compare_runs(session.result, replayed).faithful

    def test_gc_heavy_replay(self):
        from repro.workloads import gc_churn

        cfg = VMConfig(semispace_words=9_000)
        session, replayed, report = record_and_replay(
            gc_churn(iters=600), config=cfg, **jitter_knobs(3)
        )
        assert session.result.gc_count >= 2
        assert report.faithful

    def test_deadlock_replays(self):
        """A recorded deadlock is itself deterministic behaviour."""
        from repro.workloads import figure1_cd

        # seeds known to hit the lost-notify deadlock, plus a search margin
        for seed in (49, 55, 57, *range(60, 120)):
            session = record(figure1_cd(), config=CFG, **jitter_knobs(seed, 5, 120))
            if session.result.deadlocked:
                replayed = replay(figure1_cd(), session.trace, config=CFG)
                assert replayed.deadlocked == session.result.deadlocked
                assert compare_runs(session.result, replayed).faithful
                return
        pytest.fail("no seed produced a deadlock")


class TestOnlineDivergenceDetection:
    def test_truncated_switch_stream(self):
        session = record(racy_bank(), config=CFG, **jitter_knobs(7))
        if session.trace.n_switch_records < 3:
            pytest.skip("not enough switches")
        bad = TraceLog(
            switches=session.trace.switches[:2],
            values=list(session.trace.values),
            meta=dict(session.trace.meta),
        )
        with pytest.raises(ReplayDivergenceError):
            replay(racy_bank(), bad, config=CFG)

    def test_tampered_switch_delta(self):
        session = record(racy_bank(), config=CFG, **jitter_knobs(7))
        switches = list(session.trace.switches)
        switches[0] += 3  # shift the first preemption later
        bad = TraceLog(switches=switches, values=list(session.trace.values), meta=dict(session.trace.meta))
        with pytest.raises(ReplayDivergenceError):
            replay(racy_bank(), bad, config=CFG)

    def test_wrong_program_for_trace(self):
        from repro.workloads import philosophers

        session = record(server(seed=2), config=CFG, **jitter_knobs(2))
        with pytest.raises((ReplayDivergenceError, VMError)):
            replay(philosophers(), session.trace, config=CFG)

    def test_value_kind_mismatch(self):
        session = record(server(seed=2), config=CFG, **jitter_knobs(2))
        values = list(session.trace.values)
        # corrupt the first record's kind tag
        values[0] = 99
        bad = TraceLog(switches=list(session.trace.switches), values=values, meta=dict(session.trace.meta))
        with pytest.raises(ReplayDivergenceError):
            replay(server(seed=2), bad, config=CFG)


class TestControllerContract:
    def test_replay_requires_trace(self):
        from repro.api import build_vm

        vm = build_vm(racy_bank(), CFG)
        with pytest.raises(VMError):
            DejaVu(vm, MODE_REPLAY)

    def test_one_controller_per_vm(self):
        from repro.api import build_vm

        vm = build_vm(racy_bank(), CFG)
        DejaVu(vm, MODE_RECORD)
        with pytest.raises(VMError):
            DejaVu(vm, MODE_RECORD)

    def test_bad_mode(self):
        from repro.api import build_vm

        vm = build_vm(racy_bank(), CFG)
        with pytest.raises(VMError):
            DejaVu(vm, "observe")

    def test_trace_only_after_run(self):
        from repro.api import build_vm

        vm = build_vm(racy_bank(), CFG)
        dv = DejaVu(vm, MODE_RECORD)
        with pytest.raises(VMError):
            dv.trace()

    def test_trace_only_in_record_mode(self):
        session = record(racy_bank(), config=CFG, **jitter_knobs(1))
        from repro.api import build_vm

        vm = build_vm(racy_bank(), CFG)
        dv = DejaVu(vm, MODE_REPLAY, trace=session.trace)
        vm.run()
        with pytest.raises(VMError):
            dv.trace()

    def test_stats_populated(self):
        session = record(server(seed=1), config=CFG, **jitter_knobs(1))
        assert session.stats["clock_records"] > 0
        assert session.stats["native_records"] > 0
        assert session.stats["switch_records"] == session.trace.n_switch_records

    def test_end_meta_in_trace(self):
        session = record(racy_bank(), config=CFG, **jitter_knobs(1))
        end = dict(session.trace.meta["end"])
        assert end["cycles"] == session.result.cycles
        assert end["heap_digest"] == session.result.heap_digest
