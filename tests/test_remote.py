"""Remote reflection (§3): ports, proxies, mappings, the tool interpreter."""

import pytest

from repro.api import build_vm
from repro.debugger.guestlib import debugger_classdefs
from repro.remote import (
    DebugPort,
    RemoteObject,
    RemoteReflector,
    RemoteResolver,
    ToolInterpreter,
    default_mappings,
)
from repro.remote.ptrace import IntrusivePort
from repro.vm import VirtualMachine, assemble
from repro.vm.errors import VMError
from repro.workloads import racy_bank
from tests.conftest import TEST_CONFIG

APP_SRC = """
.class Holder
.field label LString;
.field nums [I
.field other LHolder;
.field n I
.class Main
.field static h LHolder;
.method static main ()V
    new Holder
    putstatic Main.h LHolder;
    getstatic Main.h LHolder;
    ldc "tagged"
    putfield Holder.label LString;
    getstatic Main.h LHolder;
    iconst 3
    newarray
    putfield Holder.nums [I
    getstatic Main.h LHolder;
    getfield Holder.nums [I
    iconst 1
    iconst 55
    iastore
    getstatic Main.h LHolder;
    iconst -9
    putfield Holder.n I
    getstatic Main.h LHolder;
    getstatic Main.h LHolder;
    putfield Holder.other LHolder;
    return
.end
"""


@pytest.fixture
def pair():
    """(app VM after running APP_SRC, tool VM with the same classes)."""
    from repro.api import GuestProgram

    program = GuestProgram.from_source(APP_SRC)
    app = build_vm(program, TEST_CONFIG)
    app.run()
    tool = VirtualMachine(TEST_CONFIG)
    tool.declare(program.classdefs)
    tool.declare(debugger_classdefs())
    return app, tool


def remote_holder(app, tool) -> RemoteObject:
    resolver = RemoteResolver(DebugPort(app), tool.loader)
    rc, slot = app.loader.resolve_static_field("Main.h")
    addr = app.om.get_field(rc.statics_addr, slot.offset)
    return RemoteObject(resolver, addr)


class TestDebugPort:
    def test_attach_checks_magic(self, pair):
        app, _ = pair
        DebugPort(app)  # ok
        app.memory.words[0] = 0  # corrupt
        with pytest.raises(VMError):
            DebugPort(app)
        from repro.vm.memory import MAGIC

        app.memory.words[0] = MAGIC

    def test_port_has_no_write_operation(self, pair):
        app, _ = pair
        port = DebugPort(app)
        assert not hasattr(port, "poke")

    def test_reads_counted(self, pair):
        app, _ = pair
        port = DebugPort(app)
        port.peek(20)
        port.peek_range(20, 5)
        port.boot(1)
        assert port.reads == 7

    def test_intrusive_port_is_separate_and_loud(self, pair):
        app, _ = pair
        port = IntrusivePort(app)
        before = app.memory.read(20)
        port.poke(20, before)
        assert port.writes == 1


class TestRemoteObjects:
    def test_scalar_field(self, pair):
        app, tool = pair
        h = remote_holder(app, tool)
        assert h.field("n") == -9

    def test_string_field(self, pair):
        app, tool = pair
        h = remote_holder(app, tool)
        label = h.field("label")
        assert isinstance(label, RemoteObject)
        assert label.as_string() == "tagged"

    def test_array_field(self, pair):
        app, tool = pair
        h = remote_holder(app, tool)
        nums = h.field("nums")
        assert nums.length == 3
        assert nums.elem(1) == 55
        assert nums.clone_primitive_array() == [0, 55, 0]

    def test_self_reference(self, pair):
        app, tool = pair
        h = remote_holder(app, tool)
        other = h.field("other")
        assert other == h  # same remote address

    def test_null_field_is_none(self, pair):
        app, tool = pair
        resolver = h = remote_holder(app, tool)
        fresh = app.om.new_object(app.loader.classes["Holder"].layout)
        obj = RemoteObject(h.resolver, fresh)
        assert obj.field("label") is None

    def test_unknown_field_rejected(self, pair):
        app, tool = pair
        h = remote_holder(app, tool)
        with pytest.raises(VMError):
            h.field("nope")

    def test_array_bounds_checked(self, pair):
        app, tool = pair
        nums = remote_holder(app, tool).field("nums")
        with pytest.raises(VMError):
            nums.elem(3)

    def test_class_name_resolved_via_remote_dictionary(self, pair):
        app, tool = pair
        h = remote_holder(app, tool)
        assert h.class_name == "Holder"

    def test_unknown_class_falls_back_to_ancestor(self, pair):
        app, _ = pair
        bare_tool = VirtualMachine(TEST_CONFIG)  # knows only the core library
        resolver = RemoteResolver(DebugPort(app), bare_tool.loader)
        rc, slot = app.loader.resolve_static_field("Main.h")
        addr = app.om.get_field(rc.statics_addr, slot.offset)
        obj = RemoteObject(resolver, addr)
        assert obj.class_name == "Object"  # nearest known ancestor


class TestToolInterpreter:
    def test_figure3_line_number(self, pair):
        app, tool = pair
        interp = ToolInterpreter(tool, DebugPort(app), default_mappings())
        rm = app.loader.resolve_method_any("Main.main()V")
        for bci in (0, 1, 4):
            want = rm.mdef.line_table.get(bci, 0)
            got = interp.call("Debugger.lineNumberOf(II)I", [rm.method_id, bci])
            assert got == want

    def test_out_of_range_offset_returns_zero(self, pair):
        app, tool = pair
        interp = ToolInterpreter(tool, DebugPort(app), default_mappings())
        rm = app.loader.resolve_method_any("Main.main()V")
        assert interp.call("Debugger.lineNumberOf(II)I", [rm.method_id, 10_000]) == 0

    def test_method_count_via_mapped_primitive(self, pair):
        app, tool = pair
        interp = ToolInterpreter(tool, DebugPort(app), default_mappings())
        got = interp.call("Debugger.methodCount()I", [])
        assert got == len(app.loader.method_by_id)

    def test_remote_writes_refused(self, pair):
        app, tool = pair
        tool.declare(
            assemble(
                """
.class Evil
.method static zap (LHolder;)V
    aload 0
    iconst 0
    putfield Holder.n I
    return
.end
"""
            )
        )
        interp = ToolInterpreter(tool, DebugPort(app), default_mappings())
        h = remote_holder(app, tool)
        with pytest.raises(VMError, match="read-only"):
            interp.call("Evil.zap(LHolder;)V", [h])

    def test_virtual_dispatch_on_remote_receiver(self, pair):
        app, tool = pair
        interp = ToolInterpreter(tool, DebugPort(app), default_mappings())
        h = remote_holder(app, tool)
        label = h.field("label")
        # String.length()I runs as tool bytecode against the remote String
        tool.declare(
            assemble(
                """
.class Probe
.method static lengthOf (LString;)I
    aload 0
    invokevirtual String.length()I
    ireturn
.end
"""
            )
        )
        assert interp.call("Probe.lengthOf(LString;)I", [label]) == 6

    def test_application_vm_unperturbed(self, pair):
        """The whole point: queries execute zero app-VM instructions and
        write zero app-VM words."""
        app, tool = pair
        snapshot = list(app.memory.words)
        cycles = app.engine.cycles
        interp = ToolInterpreter(tool, DebugPort(app), default_mappings())
        rm = app.loader.resolve_method_any("Main.main()V")
        interp.call("Debugger.lineNumberOf(II)I", [rm.method_id, 0])
        h = remote_holder(app, tool)
        h.field("label").as_string()
        assert app.memory.words == snapshot
        assert app.engine.cycles == cycles


class TestRemoteReflector:
    def test_method_name_lookup(self, pair):
        app, tool = pair
        refl = RemoteReflector(DebugPort(app), tool)
        rm = app.loader.resolve_method_any("Main.main()V")
        assert refl.method_name(rm.method_id) == "Main.main"

    def test_class_names_include_program_classes(self, pair):
        app, tool = pair
        refl = RemoteReflector(DebugPort(app), tool)
        names = refl.class_names()
        assert "Holder" in names and "Main" in names and "[I" in names

    def test_statics_read(self, pair):
        app, tool = pair
        refl = RemoteReflector(DebugPort(app), tool)
        statics = refl.statics_of("Main")
        h = statics.field("h")
        assert isinstance(h, RemoteObject)
        assert h.field("n") == -9

    def test_threads_listed(self, pair):
        app, tool = pair
        refl = RemoteReflector(DebugPort(app), tool)
        infos = refl.threads()
        assert [t.tid for t in infos] == [0]

    def test_lock_state_read_from_header(self, pair):
        app, tool = pair
        refl = RemoteReflector(DebugPort(app), tool)
        statics = refl.statics_of("Main")
        owner, rec = refl.lock_state(statics.field("h"))
        assert owner is None and rec == 0
