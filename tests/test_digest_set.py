"""The bounded behaviour-digest set (satellite of the campaign work).

Before :class:`DigestSet`, the explorer deduplicated behaviours in a
plain ``set`` that grew with every distinct behaviour — unbounded on a
long sweep.  The regression pinned here: under a large synthetic sweep
the stored-key count never exceeds the cap, while the distinct-count
estimate stays useful and is *exact* whenever the cap was never hit.
"""

import hashlib
import random

import pytest

from repro.explore import DigestSet, Explorer
from repro.vm.machine import VMConfig
from repro.workloads.registry import get_workload


def digests(n: int, seed: int = 0):
    rng = random.Random(seed)
    for _ in range(n):
        yield hashlib.blake2b(
            rng.randbytes(8), digest_size=16
        ).hexdigest()


class TestBound:
    def test_large_sweep_stays_bounded(self):
        """50k distinct digests against a cap of 512: the old plain-set
        behaviour would store all 50k."""
        ds = DigestSet(512)
        for d in digests(50_000):
            ds.add(d)
            assert ds.stored <= 512  # the bound holds at every step
        assert not ds.exact
        # the adaptive-sampling estimate is unbiased; at this scale it
        # lands well within a quarter of the truth
        assert 37_500 <= len(ds) <= 62_500

    def test_exact_below_the_cap(self):
        ds = DigestSet(512)
        seen = set()
        for d in digests(400):
            ds.add(d)
            seen.add(d)
        assert ds.exact
        assert len(ds) == len(seen)
        assert all(d in ds for d in seen)

    def test_duplicates_do_not_inflate_the_count(self):
        ds = DigestSet(512)
        sample = list(digests(100))
        for _ in range(5):
            for d in sample:
                ds.add(d)
        assert len(ds) == 100

    def test_add_reports_first_sight_exactly_at_level_zero(self):
        ds = DigestSet(512)
        d = next(digests(1))
        assert ds.add(d) is True
        assert ds.add(d) is False

    def test_cap_floor(self):
        with pytest.raises(ValueError, match="cap must be >= 8"):
            DigestSet(4)


class TestMerge:
    def test_merge_equals_single_set_over_the_union(self):
        """Sharded counting must agree with serial counting: feeding two
        halves into two sets and merging gives the same state as feeding
        everything into one (same cap, same digests)."""
        everything = list(digests(20_000, seed=3))
        serial = DigestSet(256)
        for d in everything:
            serial.add(d)
        left, right = DigestSet(256), DigestSet(256)
        for d in everything[0::2]:
            left.add(d)
        for d in everything[1::2]:
            right.add(d)
        left.merge(right)
        assert left.level == serial.level
        assert left._keys == serial._keys

    def test_merge_exact_sets_stays_exact(self):
        a, b = DigestSet(512), DigestSet(512)
        for d in digests(100, seed=1):
            a.add(d)
        for d in digests(100, seed=2):
            b.add(d)
        a.merge(b)
        assert a.exact and len(a) == 200


class TestExplorerIntegration:
    def test_explorer_with_small_cap_still_reports_sanely(self):
        """The explorer keeps working when the cap bites — the count
        degrades to an estimate instead of the sweep falling over."""
        spec = get_workload("bank")
        kwargs = spec.merged_kwargs(explore=True)
        report = Explorer(
            spec.program_factory(kwargs),
            oracle=spec.oracle(kwargs),
            bound=2,
            budget=40,
            minimize=False,
            max_failures=10_000,  # sweep the whole budget, don't early-stop
            config=VMConfig(semispace_words=60_000),
            behavior_cap=8,
        ).run()
        assert report.schedules_run == 40
        assert 1 <= report.unique_behaviors <= 40 * 2  # sane, maybe estimated

    def test_explorer_default_cap_matches_old_exact_behavior(self):
        spec = get_workload("bank")
        kwargs = spec.merged_kwargs(explore=True)
        small = Explorer(
            spec.program_factory(kwargs),
            oracle=spec.oracle(kwargs),
            bound=1,
            budget=20,
            minimize=False,
            config=VMConfig(semispace_words=60_000),
        ).run()
        # 20 schedules can't produce more than 20 distinct behaviours,
        # and the default cap (65536) keeps the count exact
        assert 1 <= small.unique_behaviors <= 20
