"""Fuzz differential testing: MiniJ → engine vs tool interpreter vs Python.

Random arithmetic expression trees are rendered to MiniJ, compiled, and
evaluated three ways:

1. the compiled engine (micro-ops),
2. the tool-VM bytecode interpreter (the remote-reflection interpreter),
3. a Python reference evaluator using the 32-bit word semantics.

All three must agree — a strong cross-check on the compiler, both
execution engines, and the word-arithmetic module at once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GuestProgram, build_vm
from repro.lang import compile_source
from repro.remote import DebugPort, ToolInterpreter
from repro.vm import VirtualMachine, words
from repro.vm.machine import VMConfig

CFG = VMConfig(semispace_words=40_000)

#: variables available in generated expressions, with fixed values
VARS = {"a": 7, "b": -3, "c": 123456, "d": 0}

_BINOPS = {
    "+": words.iadd,
    "-": words.isub,
    "*": words.imul,
    "&": words.iand,
    "|": words.ior,
    "^": words.ixor,
    "<<": words.ishl,
    ">>": words.ishr,
    ">>>": words.iushr,
}


def _leaf():
    return st.one_of(
        st.integers(min_value=-1000, max_value=1000).map(lambda n: ("lit", n)),
        st.sampled_from(sorted(VARS)).map(lambda v: ("var", v)),
    )


def _node(children):
    return st.one_of(
        st.tuples(st.just("neg"), children),
        st.tuples(st.sampled_from(sorted(_BINOPS)), children, children),
        st.tuples(st.just("cmp"), st.sampled_from(["<", "<=", ">", ">=", "==", "!="]), children, children),
    )


exprs = st.recursive(_leaf(), _node, max_leaves=25)


def render(tree) -> str:
    kind = tree[0]
    if kind == "lit":
        n = tree[1]
        return f"({n})" if n < 0 else str(n)
    if kind == "var":
        return tree[1]
    if kind == "neg":
        return f"(-{render(tree[1])})"
    if kind == "cmp":
        _, op, l, r = tree
        # comparisons already yield 0/1; route through the helper anyway to
        # exercise static calls and boolean-typed parameters
        return f"F.boolToInt(({render(l)}) {op} ({render(r)}))"
    op, l, r = tree
    return f"(({render(l)}) {op} ({render(r)}))"


def evaluate(tree) -> int:
    kind = tree[0]
    if kind == "lit":
        return words.to_i32(tree[1])
    if kind == "var":
        return words.to_i32(VARS[tree[1]])
    if kind == "neg":
        return words.ineg(evaluate(tree[1]))
    if kind == "cmp":
        _, op, l, r = tree
        lv, rv = evaluate(l), evaluate(r)
        return int(
            {
                "<": lv < rv,
                "<=": lv <= rv,
                ">": lv > rv,
                ">=": lv >= rv,
                "==": lv == rv,
                "!=": lv != rv,
            }[op]
        )
    op, l, r = tree
    return _BINOPS[op](evaluate(l), evaluate(r))


def build_minij(tree) -> str:
    decls = "\n".join(f"        int {v} = {VARS[v]};" for v in sorted(VARS))
    return f"""
class F {{
    static int boolToInt(boolean b) {{
        if (b) return 1;
        return 0;
    }}
    static int eval() {{
{decls}
        return {render(tree)};
    }}
}}
class Main {{
    static void main() {{
        System.printInt(F.eval());
    }}
}}
"""


class TestThreeWayDifferential:
    @settings(max_examples=80, deadline=None)
    @given(exprs)
    def test_engine_tool_and_reference_agree(self, tree):
        expected = evaluate(tree)
        source = build_minij(tree)
        classdefs = compile_source(source)

        # 1. compiled engine
        program = GuestProgram(classdefs=classdefs, name="fuzz")
        vm = build_vm(program, CFG)
        result = vm.run()
        assert not result.traps, result.traps
        engine_value = int(result.output_text)

        # 2. tool interpreter (bytecode, remote-capable)
        vm2 = VirtualMachine(CFG)
        vm2.declare(compile_source(source))
        tool = ToolInterpreter(vm2, DebugPort(vm2))
        tool_value = words.to_i32(tool.call("F.eval()I", []))

        assert engine_value == expected
        assert tool_value == expected

    @settings(max_examples=30, deadline=None)
    @given(exprs, st.integers(min_value=0, max_value=2**32 - 1))
    def test_record_replay_of_fuzzed_program(self, tree, seed):
        """Any generated program records and replays faithfully."""
        from repro.api import record_and_replay
        from tests.conftest import jitter_knobs

        program = GuestProgram(classdefs=compile_source(build_minij(tree)), name="fuzz")
        _, _, report = record_and_replay(program, config=CFG, **jitter_knobs(seed))
        assert report.faithful, report.detail
