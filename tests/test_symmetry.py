"""Symmetric instrumentation (§2.4): each mechanism, and its ablation.

The structure of every test pair: with the mechanism ON the replay is
faithful; with it OFF (all other mechanisms still on) the replay diverges
— caught either online (ReplayDivergenceError) or by the end-of-run
witnesses.  This is the paper's §2.4 turned into executable claims.
"""

import pytest

from repro.api import record, replay
from repro.core import SymmetryConfig, compare_runs
from repro.core.symmetry import (
    FLUSH_INTERNAL_YIELDPOINTS,
    RECORD_STACK_WORDS,
    REFILL_INTERNAL_YIELDPOINTS,
    REPLAY_STACK_WORDS,
    SymmetryManager,
)
from repro.vm.errors import ReplayDivergenceError
from repro.vm.machine import VMConfig
from repro.workloads import gc_churn, server
from tests.conftest import jitter_knobs

CHURN_CFG = VMConfig(semispace_words=9_000, initial_stack_words=128)
SERVER_CFG = VMConfig(semispace_words=60_000)
TINY_BUFFERS = dict(switch_buffer_words=16, value_buffer_words=32)


def roundtrip(program_factory, config, symmetry, seed=3, **kwargs):
    session = record(
        program_factory(), config=config, symmetry=symmetry, **jitter_knobs(seed), **kwargs
    )
    replayed = replay(
        program_factory(), session.trace, config=config, symmetry=symmetry, **kwargs
    )
    return compare_runs(session.result, replayed)


class TestSymmetricControl:
    def test_all_mechanisms_on_is_faithful(self):
        report = roundtrip(lambda: gc_churn(iters=600), CHURN_CFG, SymmetryConfig())
        assert report.faithful

    def test_tiny_buffers_with_symmetry_faithful(self):
        report = roundtrip(
            lambda: server(seed=3), SERVER_CFG, SymmetryConfig(), **TINY_BUFFERS
        )
        assert report.faithful


class TestAllocationSymmetry:
    """Pre-allocated trace buffers vs lazy allocation at first use."""

    def test_ablation_diverges(self):
        sym = SymmetryConfig(preallocate_buffers=False)
        with pytest.raises(ReplayDivergenceError):
            roundtrip(lambda: gc_churn(iters=600), CHURN_CFG, sym)


class TestLoadingSymmetry:
    """Pre-loaded DejaVu support classes vs lazy loading at first drain."""

    def test_ablation_diverges(self):
        sym = SymmetryConfig(preload_classes=False)
        with pytest.raises(ReplayDivergenceError):
            roundtrip(lambda: gc_churn(iters=600), CHURN_CFG, sym)

    def test_preload_loads_both_mode_classes(self):
        from repro.api import build_vm
        from repro.core import MODE_RECORD, DejaVu

        vm = build_vm(gc_churn(), CHURN_CFG)
        DejaVu(vm, MODE_RECORD)
        vm.run()
        # record mode nonetheless loaded the *replay* I/O class
        assert vm.loader.classes["DejaVuReplayIO"].linked
        assert vm.loader.classes["DejaVuRecordIO"].linked


class TestStackSymmetry:
    """Eager growth below a mode-independent threshold vs on-demand."""

    def test_ablation_diverges(self):
        sym = SymmetryConfig(eager_stack_growth=False)
        with pytest.raises(ReplayDivergenceError):
            roundtrip(lambda: gc_churn(iters=600), CHURN_CFG, sym)

    def test_instrumentation_costs_differ_by_mode(self):
        # the asymmetry the eager rule neutralises must actually exist
        assert RECORD_STACK_WORDS != REPLAY_STACK_WORDS


class TestLogicalClockSymmetry:
    """liveclock: instrumentation-internal yield points are not counted."""

    def test_ablation_diverges(self):
        sym = SymmetryConfig(liveclock=False)
        with pytest.raises(ReplayDivergenceError):
            roundtrip(lambda: server(seed=3), SERVER_CFG, sym, **TINY_BUFFERS)

    def test_flush_and_refill_paths_differ(self):
        # the write and read paths run different amounts of code (paper:
        # "one might entail more yield points than the other")
        assert FLUSH_INTERNAL_YIELDPOINTS != REFILL_INTERNAL_YIELDPOINTS

    def test_internal_yieldpoints_counted_in_stats(self):
        session = record(
            server(seed=3), config=SERVER_CFG, **jitter_knobs(3), **TINY_BUFFERS
        )
        assert session.stats["internal_yieldpoints"] > 0


class TestIOWarmup:
    def test_warmup_runs_in_both_modes(self):
        from repro.api import build_vm
        from repro.core import MODE_RECORD, MODE_REPLAY, DejaVu

        vm = build_vm(gc_churn(iters=10), CHURN_CFG)
        dv = DejaVu(vm, MODE_RECORD)
        vm.run()
        assert dv.sym.io_warmups == 1

        vm2 = build_vm(gc_churn(iters=10), CHURN_CFG)
        dv2 = DejaVu(vm2, MODE_REPLAY, trace=dv.trace())
        vm2.run()
        assert dv2.sym.io_warmups == 1

    def test_warmup_can_be_disabled(self):
        from repro.api import build_vm
        from repro.core import MODE_RECORD, DejaVu

        vm = build_vm(gc_churn(iters=10), CHURN_CFG)
        dv = DejaVu(vm, MODE_RECORD, symmetry=SymmetryConfig(io_warmup=False))
        vm.run()
        assert dv.sym.io_warmups == 0


class TestBuffersLeaveIdenticalHeaps:
    def test_buffers_zeroed_at_end(self):
        from repro.api import build_vm
        from repro.core import MODE_RECORD, DejaVu

        vm = build_vm(server(seed=1), SERVER_CFG)
        dv = DejaVu(vm, MODE_RECORD, switch_buffer_words=16, value_buffer_words=16)
        vm.run()
        for buf in (dv.switch_buf, dv.value_buf):
            for i in range(buf.capacity):
                assert vm.om.array_get(buf.addr, i) == 0

    def test_all_off_config_helper(self):
        off = SymmetryConfig.all_off()
        assert not any(
            (
                off.preallocate_buffers,
                off.preload_classes,
                off.io_warmup,
                off.eager_stack_growth,
                off.liveclock,
            )
        )
