"""Object model: headers, field offsets, arrays, identity hashes, traps."""

import pytest

from repro.vm import VirtualMachine, assemble
from repro.vm.errors import HeapExhaustedError, VMTrap
from repro.vm.layout import HEADER_AUX, HEADER_CLASS, HEADER_STATUS, HEADER_WORDS
from repro.vm.machine import VMConfig
from tests.conftest import TEST_CONFIG

SRC = """
.class Point
.field x I
.field y I
.class Point3
.super Point
.field z I
"""


@pytest.fixture
def world():
    vm = VirtualMachine(TEST_CONFIG)
    vm.declare(assemble(SRC))
    vm.load("Point3")
    return vm


class TestObjects:
    def test_header_shape(self, world):
        rc = world.loader.classes["Point"]
        addr = world.om.new_object(rc.layout)
        assert world.memory.read(addr + HEADER_CLASS) == rc.class_id
        assert world.memory.read(addr + HEADER_STATUS) == 0
        assert world.memory.read(addr + HEADER_AUX) == 0

    def test_fields_zeroed_and_offsets_sequential(self, world):
        layout = world.loader.classes["Point"].layout
        assert layout.field_by_name["x"].offset == HEADER_WORDS
        assert layout.field_by_name["y"].offset == HEADER_WORDS + 1
        addr = world.om.new_object(layout)
        assert world.om.get_field(addr, layout.field_by_name["x"].offset) == 0

    def test_inherited_fields_precede_own(self, world):
        layout = world.loader.classes["Point3"].layout
        assert [f.name for f in layout.instance_fields] == ["x", "y", "z"]
        assert layout.field_by_name["z"].offset == HEADER_WORDS + 2

    def test_put_get_field(self, world):
        layout = world.loader.classes["Point"].layout
        addr = world.om.new_object(layout)
        off = layout.field_by_name["y"].offset
        world.om.put_field(addr, off, -17)
        assert world.om.get_field(addr, off) == -17

    def test_size_words(self, world):
        assert world.loader.classes["Point"].layout.size_words == HEADER_WORDS + 2
        assert world.loader.classes["Point3"].layout.size_words == HEADER_WORDS + 3

    def test_null_traps(self, world):
        with pytest.raises(VMTrap):
            world.om.get_field(0, HEADER_WORDS)
        with pytest.raises(VMTrap):
            world.om.put_field(0, HEADER_WORDS, 1)
        with pytest.raises(VMTrap):
            world.om.layout_of(0)


class TestArrays:
    def test_int_array(self, world):
        addr = world.om.new_array("[I", 5)
        assert world.om.array_length(addr) == 5
        world.om.array_put(addr, 4, 99)
        assert world.om.array_get(addr, 4) == 99
        assert world.om.array_get(addr, 0) == 0

    def test_ref_array_layout(self, world):
        addr = world.om.new_array("[LPoint;", 3)
        layout = world.om.layout_of(addr)
        assert layout.is_array
        assert layout.elem_desc == "LPoint;"
        assert layout.elem_is_ref

    def test_zero_length(self, world):
        addr = world.om.new_array("[I", 0)
        assert world.om.array_length(addr) == 0

    def test_negative_length_traps(self, world):
        with pytest.raises(VMTrap) as exc:
            world.om.new_array("[I", -1)
        assert exc.value.kind == "NegativeArraySize"

    def test_bounds_trap(self, world):
        addr = world.om.new_array("[I", 3)
        with pytest.raises(VMTrap) as exc:
            world.om.array_get(addr, 3)
        assert exc.value.kind == "ArrayBounds"
        with pytest.raises(VMTrap):
            world.om.array_put(addr, -1, 0)

    def test_array_layout_cached(self, world):
        a = world.loader.array_layout("[I")
        b = world.loader.array_layout("[I")
        assert a is b

    def test_object_size_words(self, world):
        arr = world.om.new_array("[I", 7)
        assert world.om.object_size_words(arr) == HEADER_WORDS + 7
        obj = world.om.new_object(world.loader.classes["Point"].layout)
        assert world.om.object_size_words(obj) == HEADER_WORDS + 2


class TestIdentityHash:
    def test_stable_across_calls(self, world):
        layout = world.loader.classes["Point"].layout
        addr = world.om.new_object(layout)
        h1 = world.om.identity_hash(addr)
        assert h1 == world.om.identity_hash(addr)
        assert h1 != 0

    def test_distinct_objects_distinct_hashes(self, world):
        layout = world.loader.classes["Point"].layout
        a = world.om.new_object(layout)
        b = world.om.new_object(layout)
        assert world.om.identity_hash(a) != world.om.identity_hash(b)

    def test_array_hash_unsupported(self, world):
        addr = world.om.new_array("[I", 1)
        with pytest.raises(VMTrap):
            world.om.identity_hash(addr)

    def test_hash_survives_gc(self, world):
        layout = world.loader.classes["Point"].layout
        addr = world.om.new_object(layout)
        holder = world.loader._tr_push(addr)
        h = world.om.identity_hash(addr)
        world.collect()
        moved = world.loader._tr_get(holder)
        assert moved != addr  # semispace flip moved it
        assert world.om.identity_hash(moved) == h


class TestExhaustion:
    def test_raises_after_failed_gc(self):
        vm = VirtualMachine(VMConfig(semispace_words=3000))
        with pytest.raises(HeapExhaustedError):
            # keep everything alive via temp roots until nothing fits
            for _ in range(5000):
                vm.loader._tr_push(vm.om.new_array("[I", 50))
