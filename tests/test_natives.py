"""The native interface: core natives, custom natives, upcalls."""

import pytest

from repro.api import GuestProgram, build_vm, record_and_replay
from repro.vm.errors import VMTrap
from repro.vm.machine import Environment, VMConfig
from repro.vm.native import NativeResult
from tests.conftest import TEST_CONFIG, jitter_knobs, run_source


class TestOutputNatives:
    def test_print_variants(self):
        src = """.class Main
.method static main ()V
    ldc "x="
    invokestatic System.print(LString;)V
    iconst -7
    invokestatic System.printInt(I)V
    iconst 10
    invokestatic System.printChar(I)V
    return
.end
"""
        assert run_source(src).output_text == "x=-7\n"


class TestArraycopy:
    def copy(self, src_vals, src_pos, dst_len, dst_pos, n):
        vm = build_vm(
            GuestProgram.from_source(".class Main\n.method static main ()V\n    return\n.end\n"),
            TEST_CONFIG,
        )
        vm.run()
        om = vm.om
        a = om.new_array("[I", len(src_vals))
        for i, v in enumerate(src_vals):
            om.array_put(a, i, v)
        b = om.new_array("[I", dst_len)
        rm = vm.loader.resolve_method_any("System.arraycopy([II[III)V")
        nd = vm.natives.lookup(rm.qualname)
        from repro.vm.native import NativeCall

        ctx = NativeCall(vm, vm.scheduler.threads[0], rm, [a, src_pos, b, dst_pos, n])
        try:
            nd.fn(ctx)
        finally:
            ctx.release()
        return [om.array_get(b, i) for i in range(dst_len)]

    def test_basic(self):
        assert self.copy([1, 2, 3, 4], 1, 3, 0, 3) == [2, 3, 4]

    def test_bounds_trap(self):
        with pytest.raises(VMTrap):
            self.copy([1, 2], 0, 2, 1, 2)

    def test_negative_length_trap(self):
        with pytest.raises(VMTrap):
            self.copy([1], 0, 1, 0, -1)

    def test_overlapping_forward(self):
        src = """.class Main
.method static main ()V
    iconst 5
    newarray
    astore 0
    iconst 0
    istore 1
fill:
    iload 1
    iconst 5
    if_icmpge go
    aload 0
    iload 1
    iload 1
    iastore
    iinc 1 1
    goto fill
go:
    aload 0
    iconst 0
    aload 0
    iconst 1
    iconst 4
    invokestatic System.arraycopy([II[III)V
    iconst 0
    istore 1
show:
    iload 1
    iconst 5
    if_icmpge done
    aload 0
    iload 1
    iaload
    invokestatic System.printInt(I)V
    iinc 1 1
    goto show
done:
    return
.end
"""
        # overlap-safe: [0,1,2,3,4] shifted right = [0,0,1,2,3]
        assert run_source(src).output_text == "00123"


class TestEnvironmentalNatives:
    def test_random_int_seeded(self):
        src = """.class Main
.method static main ()V
    iconst 100
    invokestatic System.randomInt(I)I
    invokestatic System.printInt(I)V
    return
.end
"""
        a = run_source(src, env=Environment(seed=42)).output_text
        b = run_source(src, env=Environment(seed=42)).output_text
        c = run_source(src, env=Environment(seed=43)).output_text
        assert a == b
        assert 0 <= int(a) < 100
        assert a != c or True  # different seeds usually differ; no hard claim

    def test_random_bad_bound_traps(self):
        src = """.class Main
.method static main ()V
    iconst 0
    invokestatic System.randomInt(I)I
    pop
    return
.end
"""
        assert run_source(src).traps[0][1] == "IllegalArgument"

    def test_read_int_consumes_inputs(self):
        src = """.class Main
.method static main ()V
    invokestatic System.readInt()I
    invokestatic System.printInt(I)V
    invokestatic System.readInt()I
    invokestatic System.printInt(I)V
    invokestatic System.readInt()I
    invokestatic System.printInt(I)V
    return
.end
"""
        result = run_source(src, env=Environment(seed=0, inputs=[10, 20]))
        assert result.output_text == "1020-1"  # -1 when exhausted

    def test_current_time_millis_monotone_nondecreasing(self):
        src = """.class Main
.method static main ()V
    invokestatic System.currentTimeMillis()I
    istore 0
    invokestatic System.currentTimeMillis()I
    iload 0
    isub
    iflt bad
    ldc "ok"
    invokestatic System.print(LString;)V
    return
bad:
    ldc "backwards"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "ok"


class TestCustomNativesAndUpcalls:
    def test_custom_native_with_upcall(self):
        calls = []

        def n_poke(ctx):
            calls.append(ctx.arg(0))
            return NativeResult(value=ctx.arg(0) * 2, upcalls=[("Main.cb(I)V", (99,))])

        src = """.class Ext
.native static poke (I)I
.class Main
.field static seen I
.method static cb (I)V
    iload 0
    putstatic Main.seen I
    return
.end
.method static main ()V
    iconst 21
    invokestatic Ext.poke(I)I
    invokestatic System.printInt(I)V
    getstatic Main.seen I
    invokestatic System.printInt(I)V
    return
.end
"""
        result = run_source(src, natives=[("Ext.poke(I)I", n_poke, False)])
        # the return value prints first, then the callback-set static
        assert result.output_text == "4299"
        assert calls == [21]

    def test_nondet_native_upcall_replays(self):
        import random

        class Source:
            def __init__(self, seed):
                self.rng = random.Random(seed)

            def __call__(self, ctx):
                v = self.rng.randrange(1000)
                return NativeResult(value=v, upcalls=[("Main.cb(I)V", (v + 1,))])

        src = """.class Ext
.native static poll ()I
.class Main
.field static acc I
.method static cb (I)V
    getstatic Main.acc I
    iload 0
    iadd
    putstatic Main.acc I
    return
.end
.method static main ()V
    iconst 0
    istore 0
loop:
    iload 0
    iconst 10
    if_icmpge done
    invokestatic Ext.poll()I
    pop
    iinc 0 1
    goto loop
done:
    getstatic Main.acc I
    invokestatic System.printInt(I)V
    return
.end
"""

        def prog():
            return GuestProgram.from_source(
                src, natives=[("Ext.poll()I", Source(7), True)]
            )

        session, replayed, report = record_and_replay(
            prog(), config=TEST_CONFIG, **jitter_knobs(7)
        )
        assert report.faithful
        assert session.result.output_text == replayed.output_text

    def test_missing_native_traps(self):
        src = """.class Ext
.native static gone ()I
.class Main
.method static main ()V
    invokestatic Ext.gone()I
    pop
    return
.end
"""
        assert run_source(src).traps[0][1] == "UnsatisfiedLink"

    def test_identity_hash_guest_visible(self):
        src = """.class Main
.method static main ()V
    new Object
    astore 0
    aload 0
    invokestatic System.identityHashCode(LObject;)I
    aload 0
    invokestatic System.identityHashCode(LObject;)I
    if_icmpeq same
    ldc "UNSTABLE"
    invokestatic System.print(LString;)V
    return
same:
    ldc "stable"
    invokestatic System.print(LString;)V
    return
.end
"""
        assert run_source(src).output_text == "stable"


class TestStringNatives:
    def test_read_line_returns_guest_string(self):
        src = """.class Main
.method static main ()V
    invokestatic System.readLine()LString;
    invokestatic System.print(LString;)V
    invokestatic System.readLine()LString;
    invokevirtual String.length()I
    invokestatic System.printInt(I)V
    invokestatic System.readLine()LString;
    invokevirtual String.length()I
    invokestatic System.printInt(I)V
    return
.end
"""
        result = run_source(src, env=Environment(seed=0, lines=["first", "abc"]))
        assert result.output_text == "first30"  # exhausted -> ""

    def test_read_line_records_and_replays(self):
        from repro.api import record_and_replay

        src = """.class Main
.method static main ()V
    invokestatic System.readLine()LString;
    invokestatic System.print(LString;)V
    return
.end
"""
        prog = GuestProgram.from_source(src)
        knobs = jitter_knobs(3)
        knobs["env"] = Environment(seed=3, lines=["once only"])
        session, replayed, report = record_and_replay(prog, config=TEST_CONFIG, **knobs)
        assert report.faithful
        assert replayed.output_text == "once only"

    def test_custom_string_native(self):
        def n_hostname(ctx):
            return NativeResult(string_value="pequeno.example")

        src = """.class Net2
.native static hostname ()LString;
.class Main
.method static main ()V
    invokestatic Net2.hostname()LString;
    invokestatic System.print(LString;)V
    return
.end
"""
        result = run_source(
            src, natives=[("Net2.hostname()LString;", n_hostname, True)]
        )
        assert result.output_text == "pequeno.example"
