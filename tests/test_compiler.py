"""The baseline compiler: yield-point placement, branch fixups, frame sizing."""

import pytest

from repro.vm import VirtualMachine, assemble
from repro.vm.compiler import (
    FRAME_OVERHEAD_WORDS,
    M_GOTO,
    M_IF_ICMPGE,
    M_INVOKESTATIC,
    M_YIELDPOINT,
    YP_BACKEDGE,
    YP_PROLOGUE,
)
from tests.conftest import TEST_CONFIG


def compile_one(body: str, sig: str = "()V"):
    vm = VirtualMachine(TEST_CONFIG)
    vm.declare(
        assemble(
            f""".class T
.method static m {sig}
{body}
.end
"""
        )
    )
    vm.load("T")
    return vm.loader.resolve_method_any(f"T.m{sig}").code


class TestYieldPoints:
    def test_prologue_yieldpoint_always_first(self):
        mc = compile_one("    return")
        assert mc.ops[0][0] == M_YIELDPOINT
        assert mc.ops[0][1] == YP_PROLOGUE

    def test_backedge_yieldpoint_before_backward_branch(self):
        mc = compile_one(
            """
top:
    iconst 1
    ifeq top
    return
"""
        )
        yps = [(i, op) for i, op in enumerate(mc.ops) if op[0] == M_YIELDPOINT]
        assert len(yps) == 2
        backedge_pc = yps[1][0]
        assert mc.ops[backedge_pc][1] == YP_BACKEDGE
        # the very next op is the branch itself
        assert mc.ops[backedge_pc + 1][0] != M_YIELDPOINT

    def test_forward_branch_gets_no_yieldpoint(self):
        mc = compile_one(
            """
    iconst 1
    ifeq done
    nop
done:
    return
"""
        )
        assert mc.n_yieldpoints == 1  # prologue only

    def test_yieldpoint_count_recorded(self):
        mc = compile_one(
            """
a:
    iconst 1
    ifeq a
b:
    iconst 1
    ifeq b
    return
"""
        )
        assert mc.n_yieldpoints == 3


class TestBranchFixups:
    def test_backward_branch_target_skips_inserted_yieldpoint(self):
        mc = compile_one(
            """
    iconst 0
    istore 0
top:
    iload 0
    iconst 10
    if_icmpge out
    iinc 0 1
    goto top
out:
    return
"""
        )
        goto = next(op for op in mc.ops if op[0] == M_GOTO)
        # target must be the machine pc of bci 2 ('top'), i.e. the iload
        assert goto[1] == mc.pc_of_bci[2]
        cond = next(op for op in mc.ops if op[0] == M_IF_ICMPGE)
        assert cond[1] == mc.pc_of_bci[7]

    def test_bci_mapping_total(self):
        mc = compile_one("    iconst 1\n    pop\n    return")
        assert len(mc.bci_of) == len(mc.ops)
        # every machine pc maps to a valid bci
        assert all(0 <= b < len(mc.pc_of_bci) for b in mc.bci_of)


class TestFrameSizing:
    def test_frame_words_formula(self):
        mc = compile_one("    iconst 1\n    iconst 2\n    iadd\n    istore 3\n    return")
        assert mc.nlocals == 4
        assert mc.max_stack == 2
        assert mc.frame_words == 4 + 2 + FRAME_OVERHEAD_WORDS

    def test_params_counted_in_locals(self):
        mc = compile_one("    return", sig="(III)V")
        assert mc.nlocals == 3


class TestResolution:
    def test_static_call_resolved_to_runtime_method(self):
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(
            assemble(
                """
.class T
.method static callee ()V
    return
.end
.method static m ()V
    invokestatic T.callee()V
    return
.end
"""
            )
        )
        vm.load("T")
        mc = vm.loader.resolve_method_any("T.m()V").code
        call = next(op for op in mc.ops if op[0] == M_INVOKESTATIC)
        assert call[1] is vm.loader.resolve_method_any("T.callee()V")

    def test_field_offsets_inlined(self):
        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(
            assemble(
                """
.class T
.field a I
.field b I
.method static m (LT;)I
    aload 0
    getfield T.b I
    ireturn
.end
"""
            )
        )
        vm.load("T")
        from repro.vm.compiler import M_GETFIELD
        from repro.vm.layout import HEADER_WORDS

        mc = vm.loader.resolve_method_any("T.m(LT;)I").code
        get = next(op for op in mc.ops if op[0] == M_GETFIELD)
        assert get[1] == HEADER_WORDS + 1  # offset of b

    def test_native_cannot_be_compiled(self):
        from repro.vm.compiler import compile_method
        from repro.vm.errors import VMError

        vm = VirtualMachine(TEST_CONFIG)
        vm.declare(assemble(".class T\n.native static n ()I\n"))
        rc = vm.loader.ensure_layout("T")
        rm = vm.loader.resolve_method_any("T.n()I")
        with pytest.raises(VMError):
            compile_method(vm.loader, rc, rm)
