"""The engine's optimization layers are invisible to the guest.

Threaded dispatch, superinstruction fusion, and inline caches are pure
host-side speed: every :class:`EngineConfig` combination must produce the
same cycles, events, heap digests, and trace bytes — and a trace recorded
under one engine must replay under any other.  These tests pin that
contract, plus the batched cycle-accounting semantics (budget before
deadline, exact trap cycle) and the fusion legality invariants.
"""

from __future__ import annotations

import pytest

from repro.api import GuestProgram, build_vm, record, replay
from repro.core import compare_runs
from repro.tools import ReplayProfiler
from repro.vm.compiler import (
    F_YP_GROUP,
    M_YIELDPOINT,
    YP_BACKEDGE,
    YP_PROLOGUE,
)
from repro.vm.engineconfig import EngineConfig
from repro.vm.errors import VMError
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank, server, synced_bank
from tests.conftest import jitter_knobs

CFG = VMConfig(semispace_words=70_000)
ALL_ENGINES = EngineConfig.all_combinations()


def _cfg(engine: EngineConfig, **kwargs) -> VMConfig:
    base = dict(semispace_words=70_000)
    base.update(kwargs)
    return VMConfig(engine=engine, **base)


def _run_bank(engine: EngineConfig, factory=racy_bank, seed: int = 11):
    vm = build_vm(factory(), _cfg(engine), **jitter_knobs(seed))
    return vm, vm.run("Main.main()V")


class TestToggleMatrix:
    """Every toggle combination, same guest behavior (the bank workloads)."""

    @pytest.fixture(scope="class")
    def baseline_runs(self):
        return {
            factory.__name__: _run_bank(EngineConfig.baseline(), factory)[1]
            for factory in (racy_bank, synced_bank)
        }

    @pytest.mark.parametrize(
        "engine", ALL_ENGINES, ids=[e.describe() for e in ALL_ENGINES]
    )
    @pytest.mark.parametrize("factory", [racy_bank, synced_bank])
    def test_behavior_identical(self, engine, factory, baseline_runs):
        _, result = _run_bank(engine, factory)
        want = baseline_runs[factory.__name__]
        assert result.cycles == want.cycles
        assert result.events == want.events
        assert result.heap_digest == want.heap_digest
        assert result.yieldpoints == want.yieldpoints
        assert result.behavior_key() == want.behavior_key()

    def test_layers_actually_engage(self):
        # server exercises invokevirtual (Queue.push/pop); bank does not
        vm, _ = _run_bank(EngineConfig(), factory=lambda: server(seed=11))
        stats = vm.engine_stats()
        assert stats["fused_ops_executed"] > 0
        assert stats["fused_sites"] > 0
        assert stats["ic_hits"] > 0
        # cycle bookkeeping: every cycle is a dispatch or a fused carry
        assert stats["dispatches"] + stats["fused_extra_cycles"] == stats["cycles"]

    def test_disabled_layers_stay_cold(self):
        vm, _ = _run_bank(EngineConfig.baseline())
        stats = vm.engine_stats()
        assert stats["fused_ops_executed"] == 0
        assert stats["fused_sites"] == 0
        assert stats["ic_hits"] == 0 and stats["ic_misses"] == 0
        assert stats["dispatches"] == stats["cycles"]


# ---------------------------------------------------------------------------
# batched cycle accounting


_SPIN = """
.class Main
.method static main ()V
loop:
    goto loop
.end
"""


class _CountingTimer:
    """FixedTimer that counts how many intervals the engine draws."""

    def __init__(self, interval: int):
        self.interval = interval
        self.draws = 0

    def next_interval(self) -> int:
        self.draws += 1
        return self.interval


class TestCycleBudget:
    """The budget trap fires at exactly ``max_cycles + 1`` — on every
    engine, and without consuming a timer interval for the final crossing
    (the budget is tested before the deadline in the shared check)."""

    @pytest.mark.parametrize(
        "engine", ALL_ENGINES, ids=[e.describe() for e in ALL_ENGINES]
    )
    def test_trap_cycle_pinned(self, engine):
        program = GuestProgram.from_source(_SPIN)
        timer = _CountingTimer(1000)
        vm = build_vm(program, _cfg(engine, max_cycles=4_999), timer=timer)
        with pytest.raises(VMError, match="cycle budget exceeded"):
            vm.run(program.main)
        assert vm.engine.cycles == 5_000
        # initial arm + one rearm per deadline actually crossed (1000..4000);
        # the crossing at 5000 trapped on the budget first: no draw for it.
        assert timer.draws == 5

    def test_deadline_on_budget_boundary(self):
        """A deadline landing exactly on the trap cycle: the budget is
        tested first, so the timer never rearms — identically on every
        engine (the off-by-one this check pins down)."""
        program = GuestProgram.from_source(_SPIN)
        observed = set()
        for engine in ALL_ENGINES:
            timer = _CountingTimer(501)
            vm = build_vm(program, _cfg(engine, max_cycles=500), timer=timer)
            with pytest.raises(VMError, match="cycle budget exceeded"):
                vm.run(program.main)
            observed.add((vm.engine.cycles, timer.draws))
        # one draw: the initial arm; the deadline at 501 lost to the budget
        assert observed == {(501, 1)}


# ---------------------------------------------------------------------------
# cross-engine record/replay (the determinism golden tests)


class TestCrossEngineReplay:
    @pytest.fixture(scope="class")
    def golden(self):
        """One recording per engine extreme, same knobs."""
        runs = {}
        for name, engine in (
            ("plain", EngineConfig.baseline()),
            ("optimized", EngineConfig()),
        ):
            runs[name] = record(
                racy_bank(), config=_cfg(engine), **jitter_knobs(23)
            )
        return runs

    def test_trace_bytes_identical(self, golden, tmp_path):
        paths = {}
        for name, session in golden.items():
            paths[name] = tmp_path / f"{name}.djv"
            session.trace.save(paths[name])
        assert paths["plain"].read_bytes() == paths["optimized"].read_bytes()

    def test_record_plain_replay_optimized(self, golden):
        replayed = replay(
            racy_bank(), golden["plain"].trace, config=_cfg(EngineConfig())
        )
        report = compare_runs(golden["plain"].result, replayed)
        assert report.faithful, report.detail
        assert replayed.heap_digest == golden["plain"].result.heap_digest

    def test_record_optimized_replay_plain(self, golden):
        replayed = replay(
            racy_bank(),
            golden["optimized"].trace,
            config=_cfg(EngineConfig.baseline()),
        )
        report = compare_runs(golden["optimized"].result, replayed)
        assert report.faithful, report.detail
        assert replayed.heap_digest == golden["optimized"].result.heap_digest

    def test_profile_attribution_unchanged_by_fusion(self, golden):
        """Per-method cycle attribution of a replayed profile is a guest
        property — the engine that recorded the trace must not leak in."""
        profiles = {
            name: ReplayProfiler(racy_bank(), session.trace, CFG).run()
            for name, session in golden.items()
        }
        by_method = {
            name: {q: m.cycles for q, m in p.methods.items()}
            for name, p in profiles.items()
        }
        assert by_method["plain"] == by_method["optimized"]
        assert by_method["plain"]  # non-trivial profile
        assert (
            profiles["plain"].total_cycles == profiles["optimized"].total_cycles
        )


# ---------------------------------------------------------------------------
# fusion legality invariants (structural, per compiled method)


class TestFusionInvariants:
    @pytest.fixture(scope="class")
    def loader(self):
        vm, _ = _run_bank(EngineConfig())
        return vm.loader

    def test_weights_cover_canonical_program(self, loader):
        for rm in loader.method_by_id:
            if rm.code is None:
                continue
            mc = rm.code
            assert sum(mc.xweights) == len(mc.ops), rm.qualname
            assert len(mc.xops) == len(mc.xbci_of) == len(mc.xweights)

    def test_every_yieldpoint_survives_fusion(self, loader):
        # A canonical yield point appears in the executable program either
        # as a plain M_YIELDPOINT or as the *terminal* of a record-aware
        # F_YP_GROUP — never absorbed into the interior of a group.
        for rm in loader.method_by_id:
            if rm.code is None:
                continue
            canonical = sum(1 for op in rm.code.ops if op[0] == M_YIELDPOINT)
            executable = sum(
                1
                for op in rm.code.xops
                if op[0] == M_YIELDPOINT or op[0] == F_YP_GROUP
            )
            assert canonical == executable, rm.qualname

    def test_fusion_occurred_somewhere(self, loader):
        assert any(
            rm.code is not None and rm.code.fused_groups > 0
            for rm in loader.method_by_id
        )

    def test_baseline_compiles_aliased(self):
        vm, _ = _run_bank(EngineConfig.baseline())
        for rm in vm.loader.method_by_id:
            if rm.code is None:
                continue
            assert rm.code.xops is rm.code.ops


# ---------------------------------------------------------------------------
# record-aware yield-point fusion (F_YP_GROUP)


class TestYieldPointFusion:
    @pytest.fixture(scope="class")
    def fused_vm(self):
        vm, _ = _run_bank(EngineConfig())
        return vm

    def test_groups_are_emitted_and_well_formed(self, fused_vm):
        seen = 0
        for rm in fused_vm.loader.method_by_id:
            if rm.code is None:
                continue
            for pc, (mop, a, b) in enumerate(rm.code.xops):
                if mop != F_YP_GROUP:
                    continue
                seen += 1
                assert a in (YP_PROLOGUE, YP_BACKEDGE)
                pre_fn, n_pre = b
                assert callable(pre_fn)
                assert 1 <= n_pre <= 3
                # the group charges exactly the micro-ops it replaced
                assert rm.code.xweights[pc] == n_pre + 1
        assert seen > 0  # backedge yield points do fuse somewhere

    def test_group_prefix_semantics_match_canonical(self, fused_vm):
        """Executing a group's pre_fn mutates stack/locals exactly as the
        canonical micro-ops it absorbed (checked against ops/xops)."""
        from repro.vm.compiler import M_ALOAD, M_ICONST, M_IINC, M_ILOAD
        from repro.vm import words as W

        checked = 0
        for rm in fused_vm.loader.method_by_id:
            if rm.code is None:
                continue
            mc = rm.code
            # reconstruct each group's canonical slice via the weights
            ci = 0
            for pc, (mop, a, b) in enumerate(mc.xops):
                width = mc.xweights[pc]
                if mop == F_YP_GROUP:
                    pre = mc.ops[ci:ci + width - 1]
                    pre_fn, n_pre = b
                    assert len(pre) == n_pre
                    stack, locals_ = [], list(range(mc.nlocals))
                    want_stack, want_locals = [], list(range(mc.nlocals))
                    pre_fn(stack, locals_)
                    for m, pa, pb in pre:
                        if m == M_ICONST:
                            want_stack.append(pa)
                        elif m == M_IINC:
                            want_locals[pa] = W.to_i32(want_locals[pa] + pb)
                        else:
                            assert m in (M_ILOAD, M_ALOAD)
                            want_stack.append(want_locals[pa])
                    assert stack == want_stack and locals_ == want_locals
                    checked += 1
                ci += width
        assert checked > 0

    def test_yp_groups_execute_with_exact_accounting(self):
        vm, _ = _run_bank(EngineConfig())
        engine = vm.engine
        assert engine._ypstat[0] > 0  # groups actually ran
        stats = engine.stats()
        assert stats["fused_ops_executed"] >= engine._ypstat[0]
        assert stats["dispatches"] == stats["cycles"] - stats["fused_extra_cycles"]
        # guest cycles are engine-invariant: the baseline sees the same
        vm_base, _ = _run_bank(EngineConfig.baseline())
        assert vm_base.engine.cycles == engine.cycles

    def test_switch_and_threaded_agree_on_fused_code(self):
        switch_only = EngineConfig(
            threaded_dispatch=False, fusion=True, inline_caches=False
        )
        threaded = EngineConfig(
            threaded_dispatch=True, fusion=True, inline_caches=False
        )
        _, a = _run_bank(switch_only)
        _, b = _run_bank(threaded)
        assert a.heap_digest == b.heap_digest
        assert a.cycles == b.cycles


# ---------------------------------------------------------------------------
# inline caches


class TestInlineCaches:
    def test_monomorphic_sites_hit(self):
        vm, _ = _run_bank(EngineConfig(), factory=lambda: server(seed=11))
        stats = vm.engine_stats()
        assert stats["ic_sites"] > 0
        assert stats["ic_misses"] >= 1  # first dispatch per site misses
        assert stats["ic_hits"] > stats["ic_misses"]
        assert stats["ic_invalidations"] > 0  # class loads flushed caches

    def test_disabled_caches_never_consulted(self):
        engine = EngineConfig(threaded_dispatch=True, fusion=True, inline_caches=False)
        vm, _ = _run_bank(engine, factory=lambda: server(seed=11))
        stats = vm.engine_stats()
        assert stats["ic_hits"] == 0 and stats["ic_misses"] == 0
        # sites still exist (compiled in), they are just not used
        assert stats["ic_sites"] > 0


# ---------------------------------------------------------------------------
# the CLI surface


class TestEngineStatsCLI:
    def test_engine_stats_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.jasm"
        path.write_text(
            """
.class Main
.method static main ()V
    iconst 0
    istore 0
loop:
    iload 0
    iconst 40
    if_icmpge done
    iinc 0 1
    goto loop
done:
    return
.end
"""
        )
        assert main(["engine-stats", str(path), "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "engine: threaded+fusion+ic" in out
        assert "dispatches:" in out and "ic_hits:" in out

    def test_engine_preset_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.jasm"
        path.write_text(".class Main\n.method static main ()V\n    return\n.end\n")
        assert main(["engine-stats", str(path), "--seed", "3", "--engine", "baseline"]) == 0
        assert "engine: switch" in capsys.readouterr().out
