"""The text assembler."""

import pytest

from repro.vm.asm import assemble
from repro.vm.bytecode import Op
from repro.vm.errors import AssemblyError


def one_method(body: str) -> list:
    src = f""".class T
.method static m ()V
{body}
    return
.end
"""
    cd = assemble(src)[0]
    return cd.method_def("m()V").code


class TestBasics:
    def test_empty_input(self):
        assert assemble("") == []

    def test_class_and_fields(self):
        cds = assemble(
            """
.class Foo
.super Object
.field x I
.field static y [I
"""
        )
        assert len(cds) == 1
        cd = cds[0]
        assert cd.name == "Foo"
        assert cd.super_name == "Object"
        assert not cd.field_def("x").static
        assert cd.field_def("y").static
        assert cd.field_def("y").desc == "[I"

    def test_multiple_classes(self):
        cds = assemble(".class A\n.class B\n.class C\n")
        assert [c.name for c in cds] == ["A", "B", "C"]

    def test_default_super_is_object(self):
        assert assemble(".class A\n")[0].super_name == "Object"

    def test_native_declarations(self):
        cd = assemble(
            """
.class N
.native static f ()I
.native virtual g (I)V
"""
        )[0]
        assert cd.method_def("f()I").native
        assert cd.method_def("f()I").static
        assert not cd.method_def("g(I)V").static


class TestInstructions:
    def test_iconst_decimal_hex_negative(self):
        code = one_method("    iconst 10\n    pop\n    iconst 0x10\n    pop\n    iconst -3\n    pop")
        consts = [i.arg for i in code if i.op is Op.ICONST]
        assert consts == [10, 16, -3]

    def test_iinc_two_operands(self):
        code = one_method("    iinc 2 -1")
        assert code[0].arg == (2, -1)

    def test_labels_resolve(self):
        code = one_method(
            """
    iconst 0
loop:
    iconst 1
    ifeq loop
"""
        )
        branch = [i for i in code if i.op is Op.IFEQ][0]
        assert branch.arg == 1  # index of the labeled iconst

    def test_label_on_same_line_as_instruction(self):
        code = one_method("start: iconst 1\n    ifne start")
        assert code[1].arg == 0

    def test_strings_interned_with_escapes(self):
        cd = assemble(
            """
.class T
.method static m ()V
    ldc "a\\nb\\t\\"q\\""
    pop
    return
.end
"""
        )[0]
        assert cd.strings == ['a\nb\t"q"']

    def test_duplicate_strings_share_pool_entry(self):
        cd = assemble(
            """
.class T
.method static m ()V
    ldc "x"
    pop
    ldc "x"
    pop
    return
.end
"""
        )[0]
        assert len(cd.strings) == 1

    def test_field_ref_with_descriptor(self):
        code = one_method("    getstatic Foo.bar I\n    pop")
        assert code[0].arg == ("Foo.bar", "I")

    def test_field_ref_without_descriptor(self):
        code = one_method("    getstatic Foo.bar\n    pop")
        assert code[0].arg == "Foo.bar"

    def test_comments_stripped_but_not_descriptors(self):
        code = one_method(
            "    iconst 1 ; a comment\n    pop ;another\n    ldc \"keep ; this\"\n    pop"
        )
        assert code[0].arg == 1
        # string containing '; ' survives
        cd = assemble(
            '.class T\n.method static m ()V\n    ldc "a ; b"\n    pop\n    return\n.end\n'
        )[0]
        assert cd.strings == ["a ; b"]

    def test_method_ref_descriptor_semicolon_not_comment(self):
        code = one_method("    aconst_null\n    invokestatic X.f(LString;)V")
        assert code[1].arg == "X.f(LString;)V"


class TestLineTables:
    def test_source_lines_recorded(self):
        cd = assemble(
            """.class T
.method static m ()V
    iconst 1
    pop
    return
.end
"""
        )[0]
        m = cd.method_def("m()V")
        assert m.line_table[0] == 3  # iconst on source line 3
        assert m.line_table[1] == 4

    def test_line_override(self):
        cd = assemble(
            """.class T
.method static m ()V
.line 100
    iconst 1
    pop
    return
.end
"""
        )[0]
        assert cd.method_def("m()V").line_table[0] == 100


class TestErrors:
    @pytest.mark.parametrize(
        "src,fragment",
        [
            (".field x I", "outside of .class"),
            (".class A\n.method static m\n", "bad .method"),
            (".class A\n.method static m ()V\n", "unterminated"),
            (".class A\n.end\n", ".end outside"),
            (".class A\n.method static m ()V\n    bogus\n    return\n.end", "unknown mnemonic"),
            (".class A\n.method static m ()V\n    iconst x\n    return\n.end", "expected integer"),
            (".class A\n.method static m ()V\n    goto nowhere\n.end", "undefined label"),
            (".class A\n.method static m ()V\n    ldc 5\n    return\n.end", "quoted string"),
            (".class A\n.method static m ()V\n    iconst 1 2\n    return\n.end", "expected integer"),
            (".class 9bad\n", "bad class name"),
            (".bogus x\n", "unknown directive"),
            (".class A\n.method static m ()V\nx:\nx:\n    return\n.end", "duplicate label"),
        ],
    )
    def test_error_cases(self, src, fragment):
        with pytest.raises(AssemblyError) as exc:
            assemble(src)
        assert fragment in str(exc.value)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as exc:
            assemble(".class A\n.method static m ()V\n    bogus\n    return\n.end")
        assert exc.value.line == 3

    def test_instruction_outside_method(self):
        with pytest.raises(AssemblyError):
            assemble(".class A\n    iconst 1\n")

    def test_fall_off_end_rejected(self):
        with pytest.raises(Exception):
            assemble(".class A\n.method static m ()V\n    iconst 1\n.end")


class TestFilesAndDisassembly:
    def test_assemble_file(self, tmp_path):
        from repro.vm.asm import assemble_file

        p = tmp_path / "prog.jasm"
        p.write_text(".class A\n.method static m ()V\n    return\n.end\n")
        cds = assemble_file(p)
        assert cds[0].name == "A"

    def test_assembly_error_names_the_file(self, tmp_path):
        from repro.vm.asm import assemble_file

        p = tmp_path / "bad.jasm"
        p.write_text(".class A\n.method static m ()V\n    bogus\n.end\n")
        with pytest.raises(AssemblyError) as exc:
            assemble_file(p)
        assert "bad.jasm" in str(exc.value)

    def test_disassemble_roundtrips_through_assembler(self):
        """disassemble output, re-indented, is valid assembler input."""
        from repro.vm.bytecode import disassemble

        src = """.class T
.method static m (I)I
    iload 0
    iconst 2
    imul
    ireturn
.end
"""
        cd = assemble(src)[0]
        m = cd.method_def("m(I)I")
        listing = disassemble(m.code, m.line_table)
        body = "\n".join("    " + line.split(":", 1)[1].split(";")[0].strip()
                         for line in listing.splitlines())
        src2 = f".class T\n.method static m (I)I\n{body}\n.end\n"
        cd2 = assemble(src2)[0]
        assert [i.op for i in cd2.method_def("m(I)I").code] == [
            i.op for i in m.code
        ]
