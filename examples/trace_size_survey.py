#!/usr/bin/env python3
"""Survey trace sizes: DejaVu vs the §5 related-work schemes.

"A major drawback of such approaches is the overhead, in time and
particularly in space, of capturing critical events and in generating
traces."  This survey records the same workloads under four schemes and
prints the bytes each one needs:

* **DejaVu** — preemptive switch deltas + environmental values only;
* **Russinovich–Cogswell** — every dispatch, with thread identity;
* **Instant Replay** — every CREW (monitor) operation, versioned;
* **Recap** — every shared-int read value (plus DejaVu's switch carrier).
"""

from repro.api import record
from repro.baselines import instant_replay_record, rc_record, recap_record
from repro.vm import SeededJitterClock, SeededJitterTimer
from repro.vm.machine import Environment, VMConfig
from repro.workloads import ALL_WORKLOADS

CONFIG = VMConfig(semispace_words=80_000)
SEED = 13


def survey_one(name: str, factory) -> dict[str, int]:
    def knobs():
        return dict(
            config=CONFIG,
            timer=SeededJitterTimer(SEED, 40, 200),
            clock=SeededJitterClock(SEED),
            env=Environment(seed=SEED),
        )

    sizes: dict[str, int] = {}
    sizes["dejavu"] = record(factory(), **knobs()).trace.encoded_size_bytes
    _, rc_trace, _ = rc_record(factory(), **knobs())
    sizes["russinovich"] = rc_trace.encoded_size_bytes
    _, crew = instant_replay_record(factory(), **knobs())
    sizes["instant_replay"] = crew.encoded_size_bytes
    sizes["recap"] = recap_record(factory(), **knobs()).trace.encoded_size_bytes
    return sizes


def main() -> None:
    header = f"{'workload':<18}{'DejaVu':>9}{'R&C':>9}{'InstantR':>10}{'Recap':>9}"
    print(header)
    print("-" * len(header))
    totals = {"dejavu": 0, "russinovich": 0, "instant_replay": 0, "recap": 0}
    for name, factory in ALL_WORKLOADS.items():
        sizes = survey_one(name, factory)
        for k, v in sizes.items():
            totals[k] += v
        print(
            f"{name:<18}{sizes['dejavu']:>9}{sizes['russinovich']:>9}"
            f"{sizes['instant_replay']:>10}{sizes['recap']:>9}"
        )
    print("-" * len(header))
    print(
        f"{'total (bytes)':<18}{totals['dejavu']:>9}{totals['russinovich']:>9}"
        f"{totals['instant_replay']:>10}{totals['recap']:>9}"
    )
    print(
        "\nDejaVu logs only what cannot be replayed from state: "
        "preemptive switch points and environmental values."
    )


if __name__ == "__main__":
    main()
