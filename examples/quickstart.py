#!/usr/bin/env python3
"""Quickstart: record a non-deterministic multithreaded run, replay it exactly.

The guest program is a racy bank: three teller threads perform unsynchronized
``balance += 1`` updates, so the final balance depends on where the preemptive
timer happened to fire — the classic "doesn't even fail reliably" bug.

DejaVu records the non-deterministic events (preemptive switch points as
yield-point deltas, clock reads, native results), then replays the execution
deterministically: same output, same cycle count, same final heap, event for
event.
"""

from repro.api import record, replay
from repro.core import compare_runs
from repro.vm import HostTimer, SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank


def main() -> None:
    program = racy_bank(tellers=3, deposits=40)
    config = VMConfig(semispace_words=60_000)

    print("== five ordinary runs (no DejaVu, jittery timer) ==")
    outputs = set()
    for seed in range(5):
        from repro.api import build_vm

        vm = build_vm(program, config, timer=SeededJitterTimer(seed, 40, 160))
        result = vm.run(program.main)
        outputs.add(result.output_text)
        print(f"  run {seed}: {result.output_text}")
    print(f"  -> {len(outputs)} distinct outcomes: the bug is not reproducible\n")

    print("== record once under DejaVu ==")
    # HostTimer draws preemption intervals from the host clock: genuine
    # non-determinism, unknowable in advance.
    session = record(program, config=config, timer=HostTimer(40, 160))
    print(f"  recorded: {session.result.output_text}")
    print(
        f"  trace: {session.trace.n_switch_records} switch records, "
        f"{session.trace.encoded_size_bytes} bytes"
    )

    print("\n== replay the trace, twice ==")
    for i in (1, 2):
        replayed = replay(program, session.trace, config=config)
        report = compare_runs(session.result, replayed)
        print(
            f"  replay {i}: {replayed.output_text}  "
            f"(faithful: {report.faithful} — {report.detail})"
        )


if __name__ == "__main__":
    main()
