#!/usr/bin/env python3
"""Replay the paper's motivating workload: a multithreaded server.

A listener thread receives request ids from a simulated network (a JNI-style
non-deterministic native, including callbacks delivering packet statistics),
a worker pool processes them under monitor-guarded queueing with timed
waits, and responses interleave non-deterministically.

DejaVu records the native results, callback parameters, clock reads and
preemption points — then replays the whole serving order exactly.
"""

from repro.api import record, replay
from repro.core import compare_runs
from repro.vm import SeededJitterClock, SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import server


def main() -> None:
    config = VMConfig(semispace_words=80_000)

    print("== two live runs: response order differs ==")
    from repro.api import build_vm

    orders = []
    for seed in (1, 2):
        program = server(n_workers=3, n_requests=30, seed=seed)
        vm = build_vm(
            program,
            config,
            timer=SeededJitterTimer(seed, 50, 250),
            clock=SeededJitterClock(seed),
        )
        result = vm.run()
        first = result.output_text.split("\n")[0:3]
        orders.append(result.output_text)
        print(f"  seed {seed}: first responses {first} ...")
    print(f"  identical? {orders[0] == orders[1]}")

    print("\n== record one run, replay it ==")
    program = server(n_workers=3, n_requests=30, seed=7)
    session = record(
        program,
        config=config,
        timer=SeededJitterTimer(7, 50, 250),
        clock=SeededJitterClock(7),
    )
    tail = session.result.output_text.rsplit("resp:", 1)[-1]
    print(f"  recorded run ends: ...resp:{tail}")
    print(
        f"  trace: {session.trace.n_switch_records} switch records, "
        f"{session.trace.n_value_words} value words "
        f"({session.trace.encoded_size_bytes} bytes); "
        f"stats: {session.stats}"
    )

    replayed = replay(program, session.trace, config=config)
    report = compare_runs(session.result, replayed)
    print(f"  replay faithful: {report.faithful} — {report.detail}")
    print(
        "  every response, callback statistic and timed wait reproduced "
        "in the recorded order"
    )


if __name__ == "__main__":
    main()
