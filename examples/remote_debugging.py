#!/usr/bin/env python3
"""Debug a replayed execution without perturbing it (Figures 3 and 4).

Three tiers, as in the paper:

1. the **application VM** replays a recorded racy-bank run under DejaVu;
2. the **tool VM** hosts the debugger core; all inspection flows through a
   read-only ptrace-style port and remote reflection — including the
   Figure-3 ``Debugger.lineNumberOf`` *guest* method, interpreted on the
   tool VM against remote objects;
3. a **frontend** talks to the debugger core over TCP with small JSON
   packets.

At the end, the debugged replay is compared event-for-event against the
recording: inspection perturbed nothing.
"""

from repro.api import record
from repro.core import compare_runs
from repro.debugger import Debugger, DebuggerClient, DebuggerServer, ReplaySession
from repro.vm import SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import racy_bank


def main() -> None:
    program = racy_bank()
    config = VMConfig(semispace_words=60_000)

    print("== record the buggy run ==")
    session = record(program, config=config, timer=SeededJitterTimer(5, 40, 160))
    print(f"  recorded: {session.result.output_text}")

    print("\n== attach the three-tier debugger to a replay ==")
    replay_session = ReplaySession(program, session.trace, config=config)
    server = DebuggerServer(Debugger(replay_session)).start()
    print(f"  debugger core serving on {server.address}")

    with DebuggerClient(server.address) as client:
        # break where a teller updates the balance
        bp = client.request("break", method="Teller.run()V", bci=4)
        print(f"  breakpoint set: {bp}")

        for stop in range(3):
            status = client.request("cont")
            if status["status"] == "done":
                break
            top = status["top"]
            balance = client.request(
                "print_static", class_name="Main", field="balance"
            )["value"]
            line = client.request(
                "line_number_of", method_id=top["method_id"], offset=top["bci"]
            )["line"]
            threads = client.request("threads")
            print(
                f"  stop {stop}: {top['method']}@bci{top['bci']} "
                f"(line {line}, via guest reflection on the tool VM); "
                f"balance={balance}; threads="
                + ", ".join(f"{t['tid']}:{t['state']}" for t in threads)
            )
            print(f"    backtrace: {client.request('backtrace')}")

        final = client.request("finish")
        print(f"  replay finished: {final['output']}")
        print(
            f"  frontend traffic: {client.bytes_sent}B sent, "
            f"{client.bytes_received}B received (small packets, no images)"
        )
    server.stop()

    print("\n== perturbation check ==")
    report = compare_runs(session.result, replay_session.result)
    print(f"  debugged replay faithful: {report.faithful} — {report.detail}")
    print(f"  application VM words read via ptrace: {replay_session.port.reads}")
    print("  application VM instructions executed for the debugger: 0")


if __name__ == "__main__":
    main()
