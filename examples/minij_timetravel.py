#!/usr/bin/env python3
"""Write the guest in MiniJ, then debug it *backwards*.

Two things the core paper enables but doesn't ship:

1. guest programs in a high-level language (`repro.lang` — MiniJ compiles
   to the same class files as the assembler, with source lines flowing
   into the reflection line tables);
2. time travel: because a DejaVu trace pins the whole execution, reverse
   execution is just re-replaying and stopping earlier (`repro.debugger.
   timetravel`) — the capability the paper's §5 relates to Igor/Boothe,
   built here on replay instead of checkpoints.

We record a MiniJ bank with a lost-update race, find the *first* moment
the balance disagrees with the deposit count, and then travel back and
forth around it.
"""

from repro.api import GuestProgram, record
from repro.debugger.timetravel import TimeTravelSession
from repro.lang import compile_source
from repro.vm import SeededJitterTimer
from repro.vm.machine import VMConfig

SOURCE = """
class Teller extends Thread {
    void run() {
        for (int i = 0; i < 40; i++) {
            int stale = Main.balance;      // the racy read
            int burn = 0;
            while (burn < 3) burn++;       // widen the window
            Main.balance = stale + 1;      // the lost update
            synchronized (Main.lock) { Main.deposits += 1; }
        }
    }
}
class Main {
    static int balance;
    static int deposits;
    static Object lock;
    static void main() {
        Main.lock = new Object();
        Teller a = new Teller();
        Teller b = new Teller();
        Thread.start(a);
        Thread.start(b);
        Thread.join(a);
        Thread.join(b);
        System.print("balance=");
        System.printInt(Main.balance);
        System.print(" deposits=");
        System.printInt(Main.deposits);
    }
}
"""


def main() -> None:
    config = VMConfig(semispace_words=60_000)
    program = GuestProgram(classdefs=compile_source(SOURCE), name="minij_bank")

    print("== record the MiniJ program ==")
    session = record(program, config=config, timer=SeededJitterTimer(5, 30, 120))
    print(f"  {session.result.output_text}")

    print("\n== hunt the first lost update by bisection over time ==")
    tt = TimeTravelSession(program, session.trace, config=config)

    def lost_at(cycles: int) -> bool:
        tt.goto_cycles(cycles)
        balance = tt.read_static("Main", "balance")
        deposits = tt.read_static("Main", "deposits")
        return deposits > balance

    lo, hi = 0, session.result.cycles
    while hi - lo > 64:
        mid = (lo + hi) // 2
        if lost_at(mid):
            hi = mid
        else:
            lo = mid
    print(f"  first observable lost update near cycle {hi}")

    tt.goto_cycles(hi)
    here = tt.here()
    print(
        f"  at cycle {here.cycles}: thread {here.tid} in {here.method} "
        f"(MiniJ line {here.line}); balance="
        f"{tt.read_static('Main', 'balance')}, "
        f"deposits={tt.read_static('Main', 'deposits')}"
    )

    print("\n== travel: back 500 cycles, then return ==")
    mark = tt.mark()
    back = tt.back(500)
    print(
        f"  rewound to cycle {back.cycles}: balance="
        f"{tt.read_static('Main', 'balance')}"
    )
    again = tt.goto(mark)
    print(
        f"  forward again to cycle {again.cycles}: balance="
        f"{tt.read_static('Main', 'balance')} (identical state, every visit)"
    )

    result = tt.finish()
    from repro.core import compare_runs

    report = compare_runs(session.result, result)
    print(f"\n== resumed to completion: faithful replay = {report.faithful} ==")


if __name__ == "__main__":
    main()
