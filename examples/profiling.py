#!/usr/bin/env python3
"""Perturbation-free profiling and coverage — tools built on replay.

A conventional profiler distorts what it measures.  A replay-based one
cannot: the guest executes the recorded instruction stream cycle for
cycle while the profiler watches from the host side, so

* the profile is *exact* (every cycle attributed, no sampling error),
* the profile is *reproducible* (replaying again yields the identical
  profile), and
* the profiled run is the *actual* run that misbehaved, not a re-creation.

This demo records the dining-philosophers workload, profiles it, and then
shows line-level coverage of a program with a branch the recording never
took.
"""

from repro.api import GuestProgram, record
from repro.lang import compile_source
from repro.tools import ReplayCoverage, ReplayProfiler
from repro.vm import SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import philosophers

CONFIG = VMConfig(semispace_words=80_000)


def main() -> None:
    print("== record dining philosophers ==")
    program = philosophers(n=4, rounds=10)
    session = record(program, config=CONFIG, timer=SeededJitterTimer(3, 40, 160))
    print(f"  {session.result.output_text}\n")

    print("== exact profile of the recording ==")
    report = ReplayProfiler(philosophers(n=4, rounds=10), session.trace, CONFIG).run()
    print(report.format(6))

    report2 = ReplayProfiler(philosophers(n=4, rounds=10), session.trace, CONFIG).run()
    print(
        f"\n  second profiling run identical: "
        f"{report.methods == report2.methods} (no probe effect, ever)"
    )

    print("\n== coverage of a recorded execution (MiniJ source lines) ==")
    source = """
class Main {
    static int classify(int x) {
        if (x > 100) {
            return 2;
        }
        if (x > 10) {
            return 1;
        }
        return 0;
    }
    static void main() {
        int total = 0;
        for (int i = 0; i < 30; i++) {
            total += Main.classify(i);
        }
        System.print("total=");
        System.printInt(total);
    }
}
"""
    cov_program = GuestProgram(classdefs=compile_source(source), name="classify")
    cov_session = record(cov_program, config=CONFIG, timer=SeededJitterTimer(1, 40, 160))
    print(f"  run output: {cov_session.result.output_text}")
    coverage = ReplayCoverage(cov_program, cov_session.trace, CONFIG).run()
    print(coverage.format())
    print("\n  (the x > 100 branch never executed in this recording — its")
    print("   source line shows up as missed, via the reflection line tables)")


if __name__ == "__main__":
    main()
