#!/usr/bin/env python3
"""Reproduce the paper's Figure 1: four non-deterministic execution examples.

Scenarios A/B: two threads race on unsynchronized globals; the timer decides
whether ``print y`` shows 8 or 0.

Scenarios C/D: a wall-clock value (``Date()``) decides whether T1 takes the
``o1.wait()`` branch — a *deterministic* switch triggered by a
*non-deterministic* value.

For every distinct outcome we find, DejaVu records the run and replays it to
the identical outcome.
"""

from collections import Counter

from repro.api import record, replay
from repro.core import compare_runs
from repro.vm import SeededJitterClock, SeededJitterTimer
from repro.vm.machine import VMConfig
from repro.workloads import figure1_ab, figure1_cd

CONFIG = VMConfig(semispace_words=50_000)


def explore(name, factory, seeds, lo=5, hi=120) -> None:
    print(f"== {name} ==")
    outcomes: Counter[str] = Counter()
    witness: dict[str, int] = {}
    for seed in seeds:
        from repro.api import build_vm

        vm = build_vm(
            factory(),
            CONFIG,
            timer=SeededJitterTimer(seed, lo, hi),
            clock=SeededJitterClock(seed),
        )
        result = vm.run()
        key = result.output_text + (" [deadlock]" if result.deadlocked else "")
        outcomes[key] += 1
        witness.setdefault(key, seed)
    for outcome, count in outcomes.most_common():
        print(f"  outcome {outcome!r}: {count} of {len(list(seeds))} runs")

    print("  record + replay one run per outcome:")
    for outcome, seed in witness.items():
        session = record(
            factory(),
            config=CONFIG,
            timer=SeededJitterTimer(seed, lo, hi),
            clock=SeededJitterClock(seed),
        )
        replayed = replay(factory(), session.trace, config=CONFIG)
        report = compare_runs(session.result, replayed)
        print(
            f"    seed {seed}: recorded {session.result.output_text!r} "
            f"-> replayed {replayed.output_text!r} (faithful: {report.faithful})"
        )
    print()


def main() -> None:
    # A/B: 'print y' is 8 when T1 runs first, 0 when the preemption lands
    # before T1's stores (paper Figure 1-(A)/(B)).
    explore("Figure 1 A/B — switch-timing race", figure1_ab, range(40))
    # C/D: a small Date() value takes the wait branch (C), a large one
    # skips it (D); outcomes differ accordingly.
    explore("Figure 1 C/D — clock-steered wait/notify", figure1_cd, range(40))


if __name__ == "__main__":
    main()
